//! Static-analyzer benchmark: how many solver calls the abstract
//! interpretation pre-screen removes from CEGIS synthesis on the TPC-H
//! predicate workload, and what that does to wall time.
//!
//! Each workload predicate is synthesized twice — once with the
//! pre-screen disabled (pure-solver baseline) and once with it enabled —
//! and the two runs must produce byte-identical predicates: the analyzer
//! may only move cost, never results. Results land in
//! `BENCH_analyze.json`.
//!
//! Environment knobs: `SIA_BENCH_QUERIES` (workload size, default 24)
//! and `SIA_BENCH_ASSERT=1` to fail the run unless the pre-screen prunes
//! at least 20% of solver calls with zero recorded soundness
//! disagreements. Build with `--features checked` to cross-check every
//! pruned call against the solver while measuring.

use std::time::Instant;

use sia_bench::util;
use sia_core::{SiaConfig, Synthesizer};
use sia_expr::Pred;
use sia_obs::Counter;
use sia_tpch::{generate_workload, WorkloadConfig, LINEITEM_COLS};

struct RunStats {
    wall_s: f64,
    smt_checks: u64,
    fallbacks: u64,
    implied: u64,
    unsat: u64,
    disjuncts_pruned: u64,
    checks: u64,
    disagreements: u64,
    results: Vec<String>,
}

fn build_workload(count: usize) -> Vec<(Pred, Vec<String>)> {
    let queries = generate_workload(&WorkloadConfig {
        count,
        min_terms: 2,
        max_terms: 4,
        seed: 0x51A_5E4E,
    });
    let mut work = Vec::new();
    for q in &queries {
        let cols: Vec<String> = q
            .predicate
            .columns()
            .into_iter()
            .filter(|c| LINEITEM_COLS.contains(&c.as_str()))
            .collect();
        if cols.is_empty() {
            continue;
        }
        work.push((q.predicate.clone(), cols));
    }
    work
}

fn counter(snapshot: &sia_obs::Snapshot, key: Counter) -> u64 {
    snapshot
        .counters
        .iter()
        .find(|(k, _)| *k == key)
        .map_or(0, |(_, v)| *v)
}

fn run_once(work: &[(Pred, Vec<String>)], prescreen: bool) -> RunStats {
    sia_core::set_static_prescreen(prescreen);
    sia_obs::reset();
    sia_obs::enable();
    let start = Instant::now();
    let mut results = Vec::new();
    for (p, cols) in work {
        let mut syn = Synthesizer::new(SiaConfig::default());
        let r = syn.synthesize(p, cols).expect("synthesis succeeds");
        results.push(
            r.predicate
                .map_or_else(|| "TRUE".to_string(), |q| q.to_string()),
        );
    }
    let wall_s = start.elapsed().as_secs_f64();
    let snapshot = sia_obs::snapshot();
    sia_obs::disable();
    sia_core::set_static_prescreen(true);
    RunStats {
        wall_s,
        smt_checks: counter(&snapshot, Counter::SmtChecks),
        fallbacks: counter(&snapshot, Counter::AnalyzeFallbacks),
        implied: counter(&snapshot, Counter::AnalyzeImplied),
        unsat: counter(&snapshot, Counter::AnalyzeUnsat),
        disjuncts_pruned: counter(&snapshot, Counter::AnalyzeDisjunctsPruned),
        checks: counter(&snapshot, Counter::AnalyzeChecks),
        disagreements: counter(&snapshot, Counter::AnalyzeDisagreements),
        results,
    }
}

#[allow(clippy::cast_precision_loss)]
fn main() {
    let count = util::env_usize("SIA_BENCH_QUERIES", 24);
    let work = build_workload(count);
    println!(
        "== analyze benchmark: {} synthesis tasks from {count} workload queries ==",
        work.len()
    );

    let baseline = run_once(&work, false);
    println!(
        "baseline: {:.2}s | {} solver calls ({} validity/feasibility) | analyzer off",
        baseline.wall_s, baseline.smt_checks, baseline.fallbacks
    );
    let screened = run_once(&work, true);
    let pruned = screened.implied + screened.unsat;
    // Prune rate over the *eligible* population: validity/feasibility
    // checks, which are the calls the pre-screen is allowed to answer.
    // Sample-generation model queries are out of scope by design.
    let eligible = pruned + screened.fallbacks;
    let prune_rate = if eligible == 0 {
        0.0
    } else {
        pruned as f64 / eligible as f64
    };
    let speedup = baseline.wall_s / screened.wall_s.max(1e-9);
    println!(
        "screened: {:.2}s | {} solver calls | {} of {eligible} validity/feasibility \
         checks pruned ({} implied, {} unsat; {} dead disjuncts) | prune rate {:.1}% | \
         speedup {speedup:.2}x",
        screened.wall_s,
        screened.smt_checks,
        pruned,
        screened.implied,
        screened.unsat,
        screened.disjuncts_pruned,
        100.0 * prune_rate
    );
    if screened.checks > 0 {
        println!(
            "checked: {} verdicts cross-checked, {} disagreements",
            screened.checks, screened.disagreements
        );
    }

    let agree = baseline.results == screened.results;
    let json = format!(
        "{{\"experiment\":\"analyze\",\"tasks\":{},\"baseline_wall_s\":{},\
         \"screened_wall_s\":{},\"speedup\":{},\"baseline_smt_checks\":{},\
         \"screened_smt_checks\":{},\"eligible\":{eligible},\"pruned\":{pruned},\
         \"implied\":{},\"unsat\":{},\
         \"disjuncts_pruned\":{},\"prune_rate\":{},\"checks\":{},\"disagreements\":{},\
         \"results_agree\":{},\"metrics\":{}}}\n",
        work.len(),
        sia_obs::json_number(baseline.wall_s),
        sia_obs::json_number(screened.wall_s),
        sia_obs::json_number(speedup),
        baseline.smt_checks,
        screened.smt_checks,
        screened.implied,
        screened.unsat,
        screened.disjuncts_pruned,
        sia_obs::json_number(prune_rate),
        screened.checks,
        screened.disagreements,
        u8::from(agree),
        sia_obs::snapshot().to_json()
    );
    match std::fs::write("BENCH_analyze.json", &json) {
        Ok(()) => eprintln!("results written to BENCH_analyze.json"),
        Err(e) => eprintln!("warning: cannot write BENCH_analyze.json: {e}"),
    }

    assert!(
        agree,
        "pre-screen changed synthesis results — soundness violation"
    );
    assert_eq!(
        screened.disagreements, 0,
        "analyzer/solver disagreements recorded"
    );
    if util::env_usize("SIA_BENCH_ASSERT", 0) != 0 {
        assert!(
            prune_rate >= 0.20,
            "pre-screen pruned only {:.1}% of solver calls (need >= 20%)",
            100.0 * prune_rate
        );
    }
}
