//! Engine benchmark for the predicate move-around pass: deep join trees
//! over seeded `sia-gen` data, executed with the pass off, with static
//! pull-up/transition/push-down, and with synthesis at blocked join
//! boundaries. For every workload the three runs must return identical
//! result sets — the pass may only move predicates, never change answers
//! — and every derived or synthesized predicate is solver-checked
//! against the gathered conjunction after timing ends.
//!
//! Reported per workload: rows flowing into joins (the paper's proxy for
//! intermediate-result work), the reduction the static pass achieves,
//! the further reduction synthesis buys, and the wall-clock speedup.
//! Results land in `BENCH_engine.json`.
//!
//! Environment knobs: `SIA_BENCH_ROWS` (rows per large table, default
//! 600) and `SIA_BENCH_ASSERT=1` to fail the run unless the static pass
//! alone cuts rows-into-joins by at least 30% on the chain workload, at
//! least one predicate in the workload set is reachable only through
//! synthesis, and zero solver disagreements were recorded.

use std::time::Instant;

use sia_bench::util;
use sia_core::{verify_implies, PredEncoder, Validity};
use sia_engine::{Database, MoveAround, OptimizerConfig, QueryResult, Table};
use sia_expr::Value;
use sia_obs::Counter;

/// The three join workloads. `chain` is the snippet-1 shape: a key chain
/// where one selective bound must travel through two equivalence classes
/// to reach every scan. `star` is a hub table whose key bound reaches
/// each spoke. `synth` carries a predicate over `r_name` — a column in
/// no equivalence class, so neither substitution nor the zone closure
/// can project it onto the nation scan — only CEGIS synthesis can
/// compress `2*n_nationkey <= 5*r_name ∧ r_name <= 3` to the scan-local
/// bound `n_nationkey <= 7`.
const WORKLOADS: [(&str, &str); 3] = [
    (
        "chain",
        "SELECT * FROM customer, nation, region, supplier \
         WHERE c_nationkey = n_nationkey AND n_regionkey = r_regionkey \
         AND n_nationkey = s_nationkey AND s_nationkey <= 7",
    ),
    (
        "star",
        "SELECT * FROM nation, customer, supplier \
         WHERE n_nationkey = c_nationkey AND n_nationkey = s_nationkey \
         AND n_nationkey < 12",
    ),
    (
        "synth",
        "SELECT * FROM nation, region \
         WHERE n_regionkey = r_regionkey AND 2 * n_nationkey <= 5 * r_name \
         AND r_name <= 3",
    ),
];

/// TPC-H-proportioned registry load: dimension tables stay at catalog
/// size so joins match richly without blowing up intermediate results.
fn build_db(rows: usize) -> Database {
    let mut db = Database::new();
    for spec in sia_gen::tables() {
        let n = match spec.name {
            "nation" => 50,
            "region" => 10,
            _ => rows,
        };
        let data = spec.sample(n, 0xE17_u64 ^ spec.name.len() as u64);
        db.insert(spec.name, Table::from_rows(spec.schema(), &data));
    }
    db
}

/// Order-insensitive exact rendering of a result set.
fn fingerprint(r: &QueryResult) -> Vec<String> {
    let names: Vec<String> = r
        .table
        .schema
        .columns()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    let mut rows: Vec<String> = (0..r.table.num_rows())
        .map(|i| {
            names
                .iter()
                .map(|n| match r.table.value(i, n) {
                    Value::Null => "NULL".to_string(),
                    v => format!("{v:?}"),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

struct ModeRun {
    result: QueryResult,
    wall_s: f64,
}

fn run_mode(db: &Database, sql: &str, mode: MoveAround) -> ModeRun {
    let q = sia_sql::parse_query(sql).expect("workload SQL parses");
    let config = OptimizerConfig {
        move_around: mode,
        ..OptimizerConfig::default()
    };
    let start = Instant::now();
    let result = db.run(&q, config).expect("workload runs");
    ModeRun {
        result,
        wall_s: start.elapsed().as_secs_f64(),
    }
}

/// Solver-check every predicate the pass attached: the gathered
/// conjunction (filters plus join equalities, exactly what held above
/// the scans) must imply each of them. Returns (checks, disagreements).
fn audit(r: &QueryResult) -> (u64, u64) {
    let gathered = r.moved.gathered_conjunction();
    let mut checks = 0;
    let mut bad = 0;
    for (table, pred) in r.moved.derived.iter().chain(&r.moved.synthesized) {
        checks += 1;
        let mut enc = PredEncoder::new();
        match verify_implies(&mut enc, &gathered, pred) {
            Ok(Validity::Valid) => {}
            other => {
                bad += 1;
                eprintln!("UNSOUND push at {table}: `{pred}` not implied ({other:?})");
            }
        }
    }
    (checks, bad)
}

fn pct(saved: u64, base: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        #[allow(clippy::cast_precision_loss)]
        {
            saved as f64 / base as f64
        }
    }
}

fn main() {
    let rows = util::env_usize("SIA_BENCH_ROWS", 600);
    let db = build_db(rows);
    println!(
        "== engine benchmark: {} join workloads at {rows} rows/table ==",
        WORKLOADS.len()
    );

    sia_obs::reset();
    sia_obs::enable();

    let mut total_saved = 0u64;
    let mut total_checks = 0u64;
    let mut total_bad = 0u64;
    let mut synth_only = 0usize;
    let mut all_agree = true;
    let mut chain_static_reduction = 0.0f64;
    let mut entries = Vec::new();

    for (name, sql) in WORKLOADS {
        let off = run_mode(&db, sql, MoveAround::Off);
        let st = run_mode(&db, sql, MoveAround::Static);
        let syn = run_mode(&db, sql, MoveAround::Synthesis);

        let base = off.result.stats.join_input_rows;
        let static_saved = base.saturating_sub(st.result.stats.join_input_rows);
        let synth_saved = base.saturating_sub(syn.result.stats.join_input_rows);
        let static_reduction = pct(static_saved, base);
        let synth_reduction = pct(synth_saved, base);
        if name == "chain" {
            chain_static_reduction = static_reduction;
        }
        total_saved += synth_saved;

        // Predicates only synthesis could place: scans the static run
        // derived nothing for but the synthesis run pushed to.
        let synth_new = syn
            .result
            .moved
            .synthesized
            .iter()
            .filter(|(t, _)| !st.result.moved.derived.iter().any(|(dt, _)| dt == t))
            .count();
        synth_only += synth_new;

        let agree = fingerprint(&off.result) == fingerprint(&st.result)
            && fingerprint(&off.result) == fingerprint(&syn.result);
        all_agree &= agree;

        for r in [&st.result, &syn.result] {
            let (c, b) = audit(r);
            total_checks += c;
            total_bad += b;
        }

        // Execution-only speedup: what the smaller join inputs buy at run
        // time. Wall time (JSON) additionally carries the planning and
        // synthesis overhead the pass spends to get there.
        let speedup = off.result.elapsed.as_secs_f64() / st.result.elapsed.as_secs_f64().max(1e-9);
        println!(
            "{name}: rows-into-joins {base} -> {} static ({:.1}% cut) -> {} with synthesis \
             ({:.1}% cut) | {} derived, {} synthesized | speedup {speedup:.2}x | results {}",
            st.result.stats.join_input_rows,
            100.0 * static_reduction,
            syn.result.stats.join_input_rows,
            100.0 * synth_reduction,
            st.result.moved.derived.len(),
            syn.result.moved.synthesized.len(),
            if agree { "identical" } else { "DIVERGED" }
        );

        entries.push(format!(
            "{{\"name\":\"{name}\",\"off_join_input_rows\":{base},\
             \"static_join_input_rows\":{},\"synth_join_input_rows\":{},\
             \"static_reduction\":{},\"synth_reduction\":{},\
             \"derived\":{},\"synthesized\":{},\"synth_only_scans\":{synth_new},\
             \"off_exec_s\":{},\"static_exec_s\":{},\"exec_speedup\":{},\
             \"off_wall_s\":{},\"static_wall_s\":{},\"synth_wall_s\":{},\
             \"results_agree\":{}}}",
            st.result.stats.join_input_rows,
            syn.result.stats.join_input_rows,
            sia_obs::json_number(static_reduction),
            sia_obs::json_number(synth_reduction),
            st.result.moved.derived.len(),
            syn.result.moved.synthesized.len(),
            sia_obs::json_number(off.result.elapsed.as_secs_f64()),
            sia_obs::json_number(st.result.elapsed.as_secs_f64()),
            sia_obs::json_number(speedup),
            sia_obs::json_number(off.wall_s),
            sia_obs::json_number(st.wall_s),
            sia_obs::json_number(syn.wall_s),
            u8::from(agree),
        ));
    }

    // The headline saving, in the live counter the serve path also uses.
    sia_obs::add(Counter::EngineMoveRowsSaved, total_saved);
    let snapshot = sia_obs::snapshot();
    sia_obs::disable();

    println!(
        "total: {total_saved} join input rows saved | {total_checks} pushes solver-checked, \
         {total_bad} unsound | {synth_only} scan(s) reachable only via synthesis"
    );

    let json = format!(
        "{{\"experiment\":\"engine\",\"rows\":{rows},\"workloads\":[{}],\
         \"rows_saved\":{total_saved},\"solver_checks\":{total_checks},\
         \"solver_disagreements\":{total_bad},\"synth_only_scans\":{synth_only},\
         \"results_agree\":{},\"metrics\":{}}}\n",
        entries.join(","),
        u8::from(all_agree),
        snapshot.to_json()
    );
    match std::fs::write("BENCH_engine.json", &json) {
        Ok(()) => eprintln!("results written to BENCH_engine.json"),
        Err(e) => eprintln!("warning: cannot write BENCH_engine.json: {e}"),
    }

    assert!(
        all_agree,
        "move-around changed query results — soundness violation"
    );
    assert_eq!(total_bad, 0, "unsound predicate pushes recorded");
    if util::env_usize("SIA_BENCH_ASSERT", 0) != 0 {
        assert!(
            chain_static_reduction >= 0.30,
            "static move-around cut only {:.1}% of rows into joins on the chain \
             workload (need >= 30%)",
            100.0 * chain_static_reduction
        );
        assert!(
            synth_only >= 1,
            "no predicate was reachable only via synthesis — workload lost its \
             blocked join boundary"
        );
    }
}
