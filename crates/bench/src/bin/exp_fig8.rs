//! Fig 8: TRUE/FALSE sample counts at the final learning iteration.
use sia_bench::{report, suite, util};

fn main() {
    let queries = util::env_usize("SIA_BENCH_QUERIES", 200);
    eprintln!("running synthesis sweep over {queries} queries (baselines skipped)…");
    let r = suite::run_sweep(&suite::SweepConfig {
        queries,
        run_baselines: false,
        ..suite::SweepConfig::default()
    });
    println!("{}", report::fig8(&r));
}
