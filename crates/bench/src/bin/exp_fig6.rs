//! Fig 6: the (simulated) MaxCompute case study.
use sia_bench::{casestudy, report, util};

fn main() {
    let queries = util::env_usize("SIA_CASESTUDY_QUERIES", 10_000);
    let log = casestudy::simulate(&casestudy::CaseStudyConfig {
        queries,
        ..casestudy::CaseStudyConfig::default()
    });
    println!("{}", report::fig6(&log));
}
