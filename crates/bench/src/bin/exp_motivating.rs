//! §2 motivating example: Q1 vs Sia-rewritten Q1 vs the paper's Q2.
use sia_bench::{motivating, util};

fn main() {
    let sf = util::env_f64("SIA_BENCH_SF_LARGE", 0.2);
    eprintln!("synthesizing and executing at scale factor {sf}…");
    let r = motivating::run(sf);
    println!("Sia rewrote Q1 to:\n  {}\n", r.rewritten_sql);
    println!("original Q1 plan:\n{}", r.original.plan);
    println!("rewritten plan:\n{}", r.sia.plan);
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    println!(
        "Q1 {:.1} ms | Sia rewrite {:.1} ms ({:.2}x) | paper Q2 {:.1} ms ({:.2}x)",
        ms(r.original.elapsed),
        ms(r.sia.elapsed),
        ms(r.original.elapsed) / ms(r.sia.elapsed),
        ms(r.paper_q2.elapsed),
        ms(r.original.elapsed) / ms(r.paper_q2.elapsed),
    );
    println!(
        "join input rows: original {} | rewritten {}",
        r.original.stats.join_input_rows, r.sia.stats.join_input_rows
    );
    println!("(paper, Postgres SF 10: Q1 94 s, Q2 50 s — a 2x speed-up)");
}
