//! §6.7: the non-linearly-separable limitation, demonstrated.
use sia_core::{SiaConfig, Synthesizer};
use sia_sql::parse_predicate;

fn main() {
    // The paper's example: a > b && a < b + 50 && b > 0 && b < 150.
    // Over {a} the satisfiable region is the interval 2..=199 — FALSE
    // samples lie on *both sides* of the TRUE samples, so a single linear
    // model cannot be optimal and Sia must either emit a disjunction or
    // give up optimality.
    let p = parse_predicate("a > b AND a < b + 50 AND b > 0 AND b < 150").unwrap();
    let mut syn = Synthesizer::new(SiaConfig::default());
    let r = syn.synthesize(&p, &["a".to_string()]).unwrap();
    println!(
        "predicate: {:?}",
        r.predicate.as_ref().map(|q| q.to_string())
    );
    println!("optimal:   {}", r.optimal);
    println!("iterations: {}", r.stats.iterations);
    println!(
        "samples: {} TRUE / {} FALSE",
        r.stats.true_samples, r.stats.false_samples
    );
    println!();
    println!("The satisfiable region for a is [2, 199]; an optimal predicate");
    println!("needs both a lower and an upper bound. Invalid single-plane");
    println!("candidates are discarded by the verification step, exactly as");
    println!("§6.7 describes.");
}
