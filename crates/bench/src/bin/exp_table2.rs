//! Table 2: efficacy of SIA vs transitive closure, SIA_v1, SIA_v2.
use sia_bench::{report, suite, util};

fn main() {
    let queries = util::env_usize("SIA_BENCH_QUERIES", 200);
    eprintln!("running synthesis sweep over {queries} queries (set SIA_BENCH_QUERIES to change)…");
    let baselines = util::env_usize("SIA_BENCH_BASELINES", 1) != 0;
    let r = suite::run_sweep(&suite::SweepConfig {
        queries,
        run_baselines: baselines,
        ..suite::SweepConfig::default()
    });
    println!("Table 1: baseline configurations\n{}", report::table1());
    println!(
        "Table 2: efficacy ({} queries)\n{}",
        r.queries,
        report::table2(&r)
    );
}
