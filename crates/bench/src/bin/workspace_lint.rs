//! Workspace consistency gate, run in CI.
//!
//! Three checks, all of which must pass:
//!
//! 1. **Trace lint** (when a trace file is given): every line of a
//!    `--trace` JSONL stream must parse as a flat JSON object with a
//!    known `type`, the stream must be non-empty, and span enter/exit
//!    events must balance.
//! 2. **Obs-key sync**: every [`sia_obs::Counter`] and [`sia_obs::Hist`]
//!    variant declared in the key taxonomy must be referenced somewhere
//!    in the workspace outside the declaration file — a key nobody emits
//!    or reads is dead weight and usually a sign of a lost call site.
//! 3. **Failpoint sync**: the site names passed to `sia_fault::fire` /
//!    `fired` in the source tree and the names listed in
//!    [`sia_fault::CATALOG`] must agree in both directions: no
//!    undocumented sites, no catalog entries without a live `fire` call.
//!
//! Usage: `workspace_lint [trace.jsonl]`. Exits nonzero on any
//! violation so CI can gate on it.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut ok = true;
    if let Some(path) = std::env::args().nth(1) {
        ok &= lint_trace(&path);
    }
    let root = workspace_root();
    let sources = rust_sources(&root);
    ok &= lint_obs_keys(&root, &sources);
    ok &= lint_failpoints(&root, &sources);
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root, derived from this crate's baked-in manifest dir
/// (`crates/bench` → two levels up).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .to_path_buf()
}

/// Every `.rs` file under `crates/` and the facade `src/`, with its
/// contents. Paths are workspace-relative for readable diagnostics.
fn rust_sources(root: &Path) -> Vec<(String, String)> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        collect_rs(&root.join(top), root, &mut files);
    }
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(root.join(&p))
                .unwrap_or_else(|e| panic!("workspace_lint: cannot read {p}: {e}"));
            (p, text)
        })
        .collect()
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Skip build output if anyone ever nests a target dir.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .expect("path under root")
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
}

/// Check 1: the `--trace` JSONL stream is well-formed. Delegates to the
/// shared [`sia_obs::parse_trace`] validator (the same one the serve
/// tooling uses), so the lint and the tools cannot drift: interior
/// corruption is a hard failure, while a torn final line (a crash
/// mid-write without a trailing newline) is tolerated and reported.
fn lint_trace(path: &str) -> bool {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("workspace_lint: cannot read {path}: {e}");
            return false;
        }
    };
    let stats = match sia_obs::parse_trace(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("workspace_lint: {path}: {e}");
            return false;
        }
    };
    if stats.events == 0 {
        eprintln!("workspace_lint: {path} is empty");
        return false;
    }
    if stats.enters != stats.exits {
        eprintln!(
            "workspace_lint: {path}: unbalanced spans ({} enters, {} exits)",
            stats.enters, stats.exits
        );
        return false;
    }
    let torn = if stats.torn_tail {
        " (torn final line skipped)"
    } else {
        ""
    };
    println!(
        "workspace_lint: trace {path} OK — {} events ({} span pairs, \
         {} counters, {} hist samples){torn}",
        stats.events, stats.enters, stats.counters, stats.hists
    );
    true
}

/// Check 2: every declared obs key variant is referenced outside the
/// taxonomy file.
fn lint_obs_keys(_root: &Path, sources: &[(String, String)]) -> bool {
    const KEY_FILE: &str = "crates/obs/src/key.rs";
    let mut variants: Vec<String> = sia_obs::Counter::ALL
        .iter()
        .map(|c| format!("{c:?}"))
        .collect();
    variants.extend(sia_obs::Hist::ALL.iter().map(|h| format!("{h:?}")));
    let mut ok = true;
    for v in &variants {
        let pattern = format!("::{v}");
        let used = sources
            .iter()
            .any(|(p, text)| p != KEY_FILE && text.contains(&pattern));
        if !used {
            eprintln!(
                "workspace_lint: obs key {v} is declared in {KEY_FILE} but never \
                 referenced elsewhere — emit it or remove it"
            );
            ok = false;
        }
    }
    if ok {
        println!(
            "workspace_lint: obs keys OK — {} counters + {} hists all referenced",
            sia_obs::Counter::ALL.len(),
            sia_obs::Hist::ALL.len()
        );
    }
    ok
}

/// Check 3: `sia_fault::fire`/`fired` site names and `sia_fault::CATALOG`
/// agree in both directions.
fn lint_failpoints(_root: &Path, sources: &[(String, String)]) -> bool {
    let catalog: BTreeSet<&str> = sia_fault::CATALOG.iter().map(|(n, _, _)| *n).collect();
    let mut ok = true;
    let mut fired_sites: BTreeSet<String> = BTreeSet::new();
    for (path, text) in sources {
        // The fault crate itself (docs, parser tests) may mention
        // arbitrary site names; the catalog governs the *users*.
        if path.starts_with("crates/fault/") {
            continue;
        }
        for (site, is_fire) in failpoint_literals(text) {
            if !catalog.contains(site.as_str()) {
                eprintln!(
                    "workspace_lint: {path}: failpoint {site:?} is not in \
                     sia_fault::CATALOG — add it or fix the name"
                );
                ok = false;
            }
            if is_fire {
                fired_sites.insert(site);
            }
        }
    }
    for name in &catalog {
        if !fired_sites.contains(*name) {
            eprintln!(
                "workspace_lint: sia_fault::CATALOG lists {name:?} but no \
                 fire({name:?}) call site exists — remove the entry or restore the site"
            );
            ok = false;
        }
    }
    if ok {
        println!(
            "workspace_lint: failpoints OK — {} catalog sites all live",
            catalog.len()
        );
    }
    ok
}

/// String literals passed to `fire` or `fired` calls in `text`, tagged
/// with whether the call was `fire` (an injection site) rather than
/// `fired` (a test-side probe).
fn failpoint_literals(text: &str) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    for (needle, is_fire) in [("fire(\"", true), ("fired(\"", false)] {
        let mut rest = text;
        while let Some(at) = rest.find(needle) {
            let tail = &rest[at + needle.len()..];
            if let Some(end) = tail.find('"') {
                out.push((tail[..end].to_string(), is_fire));
                rest = &tail[end..];
            } else {
                break;
            }
        }
    }
    out
}
