//! One sweep with the SIA_v1/SIA_v2 baselines enabled, printing Table 2
//! and Table 3 (the baselines' 110/220-sample generation dominates, so
//! this is split from `exp_all` and typically run at a smaller count).
use sia_bench::{report, suite, util};

fn main() {
    let queries = util::env_usize("SIA_BENCH_QUERIES", 200);
    eprintln!("baseline sweep over {queries} queries (SIA + v1 + v2 + TC)…");
    let r = suite::run_sweep(&suite::SweepConfig {
        queries,
        ..suite::SweepConfig::default()
    });
    println!("Table 2 ({} queries)\n{}", r.queries, report::table2(&r));
    println!("Table 3 ({} queries)\n{}", r.queries, report::table3(&r));
}
