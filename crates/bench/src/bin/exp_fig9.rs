//! Fig 9 + Table 4: runtime impact of the rewrites at two scale factors.
use sia_bench::{report, runtime, util};

fn main() {
    let queries = util::env_usize("SIA_BENCH_QUERIES", 200);
    let sf_small = util::env_f64("SIA_BENCH_SF_SMALL", 0.02);
    let sf_large = util::env_f64("SIA_BENCH_SF_LARGE", 0.2);
    eprintln!("rewriting {queries} queries…");
    let (rewritten, total) =
        runtime::rewrite_workload(queries, 0x51A_2021, &sia_core::SiaConfig::default());
    eprintln!(
        "{} rewritable; measuring at SF {sf_small} and SF {sf_large}…",
        rewritten.len()
    );
    for sf in [sf_small, sf_large] {
        let db = sia_tpch::generate(&sia_tpch::TpchConfig {
            scale_factor: sf,
            ..Default::default()
        });
        let points = runtime::measure(&db, &rewritten, 3);
        println!(
            "{}",
            report::fig9(
                &format!("scale factor {sf}"),
                &points,
                rewritten.len(),
                total
            )
        );
    }
}
