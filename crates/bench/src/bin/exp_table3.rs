//! Table 3: synthesis-time breakdown for SIA, SIA_v1, SIA_v2.
use sia_bench::{report, suite, util};

fn main() {
    let queries = util::env_usize("SIA_BENCH_QUERIES", 200);
    eprintln!("running synthesis sweep over {queries} queries…");
    let baselines = util::env_usize("SIA_BENCH_BASELINES", 1) != 0;
    let r = suite::run_sweep(&suite::SweepConfig {
        queries,
        run_baselines: baselines,
        ..suite::SweepConfig::default()
    });
    println!(
        "Table 3: efficiency ({} queries)\n{}",
        r.queries,
        report::table3(&r)
    );
}
