//! Table 3: synthesis-time breakdown for SIA, SIA_v1, SIA_v2.
use sia_bench::{report, suite, util};

fn main() {
    let queries = util::env_usize("SIA_BENCH_QUERIES", 200);
    eprintln!("running synthesis sweep over {queries} queries…");
    let baselines = util::env_usize("SIA_BENCH_BASELINES", 1) != 0;
    sia_obs::reset();
    sia_obs::enable();
    let r = suite::run_sweep(&suite::SweepConfig {
        queries,
        run_baselines: baselines,
        ..suite::SweepConfig::default()
    });
    sia_obs::disable();
    println!(
        "Table 3: efficiency ({} queries)\n{}",
        r.queries,
        report::table3(&r)
    );
    let json_path = std::env::var("SIA_BENCH_JSON").unwrap_or_else(|_| "BENCH_table3.json".into());
    report::write_metrics_json(&json_path, "table3");
}
