//! The synthesis sweep behind Table 2 (efficacy), Table 3 (efficiency),
//! Fig 7 (iterations to converge), and Fig 8 (sample volumes).
//!
//! For every benchmark query and every non-empty subset of the lineitem
//! date columns occurring in its predicate, run SIA, SIA_v1, SIA_v2, and
//! the transitive-closure baseline, and aggregate per subset size.

use sia_core::baselines::transitive_closure;
use sia_core::{unsat_region, PredEncoder, SiaConfig, SynthStats, Synthesizer};
use sia_smt::QeConfig;
use sia_tpch::{generate_workload, BenchQuery, WorkloadConfig, LINEITEM_COLS};
use std::time::Duration;

/// Aggregated outcome of one synthesizer variant in one category.
#[derive(Debug, Default, Clone)]
pub struct VariantStats {
    /// Predicates that are valid *and* reference every requested column
    /// (the paper's non-zero-coefficient requirement, §6.4).
    pub valid: usize,
    /// Of those, certified optimal.
    pub optimal: usize,
    /// Per-run sample generation time.
    pub generation: Vec<Duration>,
    /// Per-run SVM training time.
    pub learning: Vec<Duration>,
    /// Per-run verification/optimality time.
    pub validation: Vec<Duration>,
    /// Learning-loop iterations (successful runs only).
    pub iterations: Vec<u32>,
    /// TRUE samples at the final iteration (successful runs only).
    pub true_samples: Vec<usize>,
    /// FALSE samples at the final iteration (successful runs only).
    pub false_samples: Vec<usize>,
    /// Iterations for runs that ended certified-optimal.
    pub iterations_to_optimal: Vec<u32>,
}

impl VariantStats {
    fn record(&mut self, requested: &[String], result: &sia_core::SynthesisResult) {
        let stats: &SynthStats = &result.stats;
        self.generation.push(stats.generation_time);
        self.learning.push(stats.learning_time);
        self.validation.push(stats.validation_time);
        let uses_all = result
            .predicate
            .as_ref()
            .map(|p| {
                let used = p.columns();
                requested.iter().all(|c| used.contains(c))
            })
            .unwrap_or(false);
        if uses_all {
            self.valid += 1;
            if result.optimal {
                self.optimal += 1;
            }
            self.iterations.push(stats.iterations);
            self.true_samples.push(stats.true_samples);
            self.false_samples.push(stats.false_samples);
            if result.optimal {
                self.iterations_to_optimal.push(stats.iterations);
            }
        }
    }
}

/// Per-category (subset size 1..=3) aggregation.
#[derive(Debug, Default, Clone)]
pub struct Category {
    /// (query, subset) pairs examined.
    pub attempted: usize,
    /// Pairs where a non-trivial valid predicate exists (non-empty
    /// unsatisfaction region — the paper's "# of possible predicates").
    pub possible: usize,
    /// SIA (counter-example guided, Table 1 row 3).
    pub sia: VariantStats,
    /// SIA_v1 (one-shot, 110+110).
    pub v1: VariantStats,
    /// SIA_v2 (one-shot, 220+220).
    pub v2: VariantStats,
    /// Transitive-closure baseline: # of queries where it derives a
    /// predicate over the requested columns.
    pub tc_valid: usize,
}

/// Full sweep output.
#[derive(Debug, Default, Clone)]
pub struct SweepResult {
    /// Index 0/1/2 ⇔ one/two/three requested columns.
    pub categories: [Category; 3],
    /// Number of workload queries processed.
    pub queries: usize,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Workload size (paper: 200).
    pub queries: usize,
    /// Workload seed.
    pub seed: u64,
    /// Run the one-shot baselines too (they dominate runtime via their
    /// 110/220-sample generation).
    pub run_baselines: bool,
    /// Base synthesizer configuration for the SIA variant (tests shrink
    /// the iteration budget; v1/v2 derive from their own presets).
    pub sia: SiaConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            queries: 200,
            seed: WorkloadConfig::default().seed,
            run_baselines: true,
            sia: SiaConfig::default(),
        }
    }
}

/// Does a non-trivial valid reduction exist? (Is the unsatisfaction
/// region non-empty?)
pub fn has_unsat_tuple(p: &sia_expr::Pred, cols: &[String]) -> Option<bool> {
    let mut enc = PredEncoder::new();
    let pf = enc.encode(p).ok()?;
    let keep: Vec<_> = cols.iter().map(|c| enc.value_var(c)).collect();
    let others: Vec<_> = enc
        .columns()
        .map(|(_, v)| v)
        .filter(|v| !keep.contains(v))
        .collect();
    let region = unsat_region(&pf, &others, &QeConfig::default()).ok()?;
    match enc.solver().check(&region) {
        r if r.is_sat() => Some(true),
        r if r.is_unsat() => Some(false),
        _ => None,
    }
}

/// Non-empty subsets of the lineitem columns present in the predicate,
/// grouped by size (1, 2, 3).
pub fn lineitem_subsets(p: &sia_expr::Pred) -> Vec<Vec<String>> {
    let pcols = p.columns();
    let present: Vec<String> = LINEITEM_COLS
        .iter()
        .map(|c| c.to_string())
        .filter(|c| pcols.contains(c))
        .collect();
    let mut out = Vec::new();
    let n = present.len();
    for mask in 1u32..(1 << n) {
        let subset: Vec<String> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| present[i].clone())
            .collect();
        out.push(subset);
    }
    out.sort_by_key(|s| s.len());
    out
}

/// Run the sweep.
pub fn run_sweep(config: &SweepConfig) -> SweepResult {
    let workload = generate_workload(&WorkloadConfig {
        count: config.queries,
        seed: config.seed,
        ..WorkloadConfig::default()
    });
    let mut result = SweepResult {
        queries: workload.len(),
        ..SweepResult::default()
    };
    for q in &workload {
        sweep_query(q, config, &mut result);
    }
    result
}

fn sweep_query(q: &BenchQuery, config: &SweepConfig, result: &mut SweepResult) {
    for subset in lineitem_subsets(&q.predicate) {
        let cat = &mut result.categories[subset.len() - 1];
        cat.attempted += 1;
        // "Possible" = a non-trivial valid reduction exists. The QE check
        // decides it directly; when it exhausts its budget (Unknown), a
        // verified valid predicate from any variant is equally a proof.
        let mut possible = has_unsat_tuple(&q.predicate, &subset) == Some(true);
        // SIA.
        let mut sia = Synthesizer::new(SiaConfig {
            seed: q.id as u64 + 1,
            ..config.sia.clone()
        });
        if let Ok(r) = sia.synthesize(&q.predicate, &subset) {
            possible |= r.predicate.as_ref().is_some_and(|p| !p.is_true());
            cat.sia.record(&subset, &r);
        }
        if possible {
            cat.possible += 1;
        }
        // Transitive closure.
        if let Some(tc) = transitive_closure(&q.predicate, &subset) {
            if !tc.is_true() {
                cat.tc_valid += 1;
            }
        }
        if config.run_baselines {
            let mut v1 = Synthesizer::new(SiaConfig {
                seed: q.id as u64 + 1,
                ..SiaConfig::v1()
            });
            if let Ok(r) = v1.synthesize(&q.predicate, &subset) {
                cat.v1.record(&subset, &r);
            }
            let mut v2 = Synthesizer::new(SiaConfig {
                seed: q.id as u64 + 1,
                ..SiaConfig::v2()
            });
            if let Ok(r) = v2.synthesize(&q.predicate, &subset) {
                cat.v2.record(&subset, &r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_sql::parse_predicate;

    #[test]
    fn subsets_grouped_by_size() {
        let p =
            parse_predicate("l_shipdate - o_orderdate < 20 AND l_commitdate - o_orderdate < 50")
                .unwrap();
        let subsets = lineitem_subsets(&p);
        assert_eq!(subsets.len(), 3); // {s}, {c}, {s,c}
        assert_eq!(subsets[0].len(), 1);
        assert_eq!(subsets[2].len(), 2);
    }

    #[test]
    fn unsat_tuple_existence() {
        // l_shipdate bounded through o_orderdate: tuples with huge
        // shipdate are unsatisfiable.
        let p =
            parse_predicate("l_shipdate - o_orderdate < 20 AND o_orderdate < DATE '1993-06-01'")
                .unwrap();
        assert_eq!(has_unsat_tuple(&p, &["l_shipdate".to_string()]), Some(true));
        // Unconstrained direction: no unsatisfaction tuples.
        let q = parse_predicate("l_shipdate - o_orderdate < 20").unwrap();
        assert_eq!(
            has_unsat_tuple(&q, &["l_shipdate".to_string()]),
            Some(false)
        );
    }

    #[test]
    fn tiny_sweep_runs() {
        let r = run_sweep(&SweepConfig {
            queries: 2,
            seed: 99,
            run_baselines: false,
            sia: SiaConfig {
                max_iterations: 2,
                initial_true: 4,
                initial_false: 4,
                per_iteration: 2,
                ..SiaConfig::default()
            },
        });
        assert_eq!(r.queries, 2);
        let attempted: usize = r.categories.iter().map(|c| c.attempted).sum();
        assert!(attempted >= 2);
        let total_possible: usize = r.categories.iter().map(|c| c.possible).sum();
        assert!(total_possible <= attempted);
        // SIA validity never exceeds possibility.
        for c in &r.categories {
            assert!(c.sia.valid <= c.possible);
            assert!(c.sia.optimal <= c.sia.valid);
        }
    }
}
