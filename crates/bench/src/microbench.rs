//! A minimal in-repo replacement for the `criterion` micro-benchmark
//! harness, offering the small API surface the `benches/` targets use.
//!
//! The external `criterion` crate cannot be vendored into this offline
//! build. This shim keeps the familiar shape — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! the `criterion_group!`/`criterion_main!` macros — with two modes:
//!
//! * **test mode** (default, what `cargo test` triggers): every benchmark
//!   body runs exactly once so regressions in bench code are caught by the
//!   ordinary test suite, with no timing overhead;
//! * **bench mode** (`--bench` on the command line, what `cargo bench`
//!   passes): each benchmark is warmed up once and then timed over
//!   `sample_size` iterations, and a mean per-iteration time is printed.
//!
//! A single free-form command-line argument acts as a substring filter on
//! benchmark names, matching criterion's CLI convention.

use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterization of a benchmark.
pub struct BenchmarkId {
    param: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value, e.g. a size.
    pub fn from_parameter<P: std::fmt::Display>(param: P) -> Self {
        BenchmarkId {
            param: param.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Run `f` for the configured number of iterations and record the
    /// mean wall-clock time per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let total = start.elapsed().as_nanos() as f64;
        self.nanos_per_iter = total / self.iters as f64;
    }
}

/// The top-level harness: holds the run mode, the name filter, and the
/// default sample size.
pub struct Criterion {
    sample_size: usize,
    bench_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut bench_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg == "--bench" {
                bench_mode = true;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
            // Other flags (--test, --nocapture, ...) are accepted and ignored.
        }
        Criterion {
            sample_size: 20,
            bench_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Builder-style override of the default sample size.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            sample_size,
        }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        self.run(name, self.sample_size, f);
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, name: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let iters = if self.bench_mode {
            sample_size.max(1) as u64
        } else {
            1
        };
        let mut b = Bencher {
            iters,
            nanos_per_iter: 0.0,
        };
        if self.bench_mode {
            // One untimed warm-up pass before the measured samples.
            let mut warm = Bencher {
                iters: 1,
                nanos_per_iter: 0.0,
            };
            f(&mut warm);
        }
        f(&mut b);
        if self.bench_mode {
            println!(
                "{name}: {} ns/iter ({iters} iters)",
                fmt_ns(b.nanos_per_iter)
            );
        } else {
            println!("{name}: ok (test mode)");
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        format!("{ns:.1}")
    }
}

/// A named collection of benchmarks sharing a sample-size override.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Override the sample size for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a benchmark named `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        let full = format!("{}/{name}", self.name);
        let sample_size = self.sample_size;
        self.c.run(&full, sample_size, f);
    }

    /// Run a parameterized benchmark named `group/param`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.param);
        let sample_size = self.sample_size;
        self.c.run(&full, sample_size, |b| f(b, input));
    }

    /// Close the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Define a function running a list of benchmark targets, mirroring
/// criterion's macro of the same name. Both the plain and the
/// `name = ...; config = ...; targets = ...` forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::microbench::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Define the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            sample_size: 50,
            bench_mode: false,
            filter: None,
        };
        let mut runs = 0;
        c.bench_function("unit/once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_mode_samples_and_warms_up() {
        let mut c = Criterion {
            sample_size: 5,
            bench_mode: true,
            filter: None,
        };
        let mut runs = 0u64;
        c.bench_function("unit/sampled", |b| b.iter(|| runs += 1));
        // One warm-up iteration plus five samples.
        assert_eq!(runs, 6);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 1,
            bench_mode: false,
            filter: Some("match".to_string()),
        };
        let mut ran = false;
        c.bench_function("other/name", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("does/match", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn groups_prefix_names_and_inherit_sample_size() {
        let mut c = Criterion {
            sample_size: 3,
            bench_mode: true,
            filter: Some("g/p".to_string()),
        };
        let mut runs = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::from_parameter("p"), &7u64, |b, &step| {
                b.iter(|| runs += step);
            });
            g.finish();
        }
        // Warm-up (1) + samples (2), each adding `step`.
        assert_eq!(runs, 21);
    }
}
