//! The MaxCompute case study (Fig 6), simulated.
//!
//! The paper examines one day of Alibaba MaxCompute production queries:
//! 204,287 *syntax-based prospective* queries (a cross-table predicate
//! blocks push-down into some table 𝒯 that has no own predicate) of which
//! 26,104 are *symbolically relevant* (Sia can actually derive an
//! unsatisfaction tuple for 𝒯's columns). The production log is
//! proprietary, so this module substitutes a calibrated synthetic
//! population:
//!
//! * the **classification itself is real** — queries are drawn from
//!   predicate templates and each template's symbolic relevance is decided
//!   with the workspace solver (unsatisfaction-tuple existence, §4.2),
//!   with template weights tuned to the paper's ≈12.8% relevant rate;
//! * the **resource marginals** are log-normal with parameters matched to
//!   the paper's headline landmark — 74.63% of queries run ≥ 10 s — and
//!   plausible CPU/memory co-scaling.

use crate::suite::has_unsat_tuple;
use sia_rand::rngs::StdRng;
use sia_rand::{Rng, SeedableRng};
use sia_sql::parse_predicate;

/// One simulated production query.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Execution time in seconds.
    pub exec_seconds: f64,
    /// CPU consumption in core-seconds.
    pub cpu_core_seconds: f64,
    /// Peak memory in GB.
    pub memory_gb: f64,
    /// Whether Sia can synthesize a push-down predicate for the blocked
    /// table (symbolically relevant).
    pub symbolically_relevant: bool,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct CaseStudyConfig {
    /// Number of syntax-based prospective queries to simulate (the paper
    /// examined 204,287; default scales down 20×).
    pub queries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CaseStudyConfig {
    fn default() -> Self {
        CaseStudyConfig {
            queries: 10_000,
            seed: 0xA11BABA,
        }
    }
}

/// Predicate templates modelled on production shapes. Each entry is a
/// cross-table predicate over a blocked table `t` (columns `t.a`, `t.b`)
/// and another table (columns `u.x`, `u.y`), paired with its sampling
/// weight. Relevance is *computed*, not assumed.
fn templates() -> Vec<(&'static str, f64)> {
    vec![
        // Bounded difference + range on the other table: relevant.
        ("t.a - u.x < 30 AND u.x < 100", 0.06),
        // Equality through the other table's bounded column: relevant.
        ("t.a = u.x + 10 AND u.x >= 0 AND u.x <= 50", 0.04),
        // Two-sided window: relevant.
        (
            "t.a - u.x < 20 AND u.x - t.a < 5 AND u.x > 0 AND u.x < 200",
            0.03,
        ),
        // Difference with an unbounded partner column: not relevant.
        ("t.a - u.x < 30", 0.40),
        // Cross-table sum with free partner: not relevant.
        ("t.a + u.x > 0", 0.25),
        // Inequality chain that never bounds t.a: not relevant.
        ("t.a < u.x AND u.y < u.x", 0.22),
    ]
}

/// Generate the simulated log.
pub fn simulate(config: &CaseStudyConfig) -> Vec<LogEntry> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Decide each template's relevance once, with the real machinery.
    let classified: Vec<(f64, bool)> = templates()
        .into_iter()
        .map(|(sql, weight)| {
            let pred = parse_predicate(sql).expect("template parses");
            let relevant = has_unsat_tuple(&pred, &["t.a".to_string()]) == Some(true);
            (weight, relevant)
        })
        .collect();
    let total_weight: f64 = classified.iter().map(|(w, _)| w).sum();
    // Log-normal exec time: P(X ≥ 10 s) = 0.7463 with median 20 s
    // ⇒ μ = ln 20, σ = ln(20/10)/z₀.₇₄₆₃ ≈ 1.047.
    let mu = 20.0f64.ln();
    let sigma = 1.047;
    (0..config.queries)
        .map(|_| {
            let mut pick = rng.gen_range(0.0..total_weight);
            let mut relevant = false;
            for (w, r) in &classified {
                if pick < *w {
                    relevant = *r;
                    break;
                }
                pick -= w;
            }
            let exec_seconds = (mu + sigma * normal(&mut rng)).exp();
            // CPU: parallel plans burn cores ~ uniform(4, 64) of the time.
            let cpu_core_seconds = exec_seconds * rng.gen_range(4.0..64.0);
            // Memory: lognormal around 8 GB.
            let memory_gb = (8.0f64.ln() + 0.9 * normal(&mut rng)).exp();
            LogEntry {
                exec_seconds,
                cpu_core_seconds,
                memory_gb,
                symbolically_relevant: relevant,
            }
        })
        .collect()
}

/// Standard normal via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Percentile of a metric (p in [0, 100]).
pub fn percentile(values: &mut [f64], p: f64) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((p / 100.0) * (values.len() - 1) as f64).round() as usize;
    values[idx]
}

/// Fraction of entries with exec time ≥ threshold seconds.
pub fn fraction_at_least(entries: &[LogEntry], threshold: f64) -> f64 {
    if entries.is_empty() {
        return 0.0;
    }
    entries
        .iter()
        .filter(|e| e.exec_seconds >= threshold)
        .count() as f64
        / entries.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_classify_as_designed() {
        for (sql, _) in templates() {
            let pred = parse_predicate(sql).unwrap();
            // Classification must be decidable for every template.
            assert!(
                has_unsat_tuple(&pred, &["t.a".to_string()]).is_some(),
                "template {sql} undecided"
            );
        }
    }

    #[test]
    fn relevant_rate_near_paper() {
        let log = simulate(&CaseStudyConfig {
            queries: 4000,
            seed: 7,
        });
        let rate = log.iter().filter(|e| e.symbolically_relevant).count() as f64 / log.len() as f64;
        // Paper: 26,104 / 204,287 ≈ 12.8%.
        assert!((0.08..0.18).contains(&rate), "rate {rate}");
    }

    #[test]
    fn exec_time_landmark() {
        let log = simulate(&CaseStudyConfig {
            queries: 4000,
            seed: 8,
        });
        let frac = fraction_at_least(&log, 10.0);
        // Paper: 74.63% ≥ 10 s.
        assert!((0.70..0.80).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn percentile_helper() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut v, 0.0), 1.0);
        assert_eq!(percentile(&mut v, 50.0), 3.0);
        assert_eq!(percentile(&mut v, 100.0), 5.0);
    }

    #[test]
    fn deterministic() {
        let a = simulate(&CaseStudyConfig {
            queries: 50,
            seed: 9,
        });
        let b = simulate(&CaseStudyConfig {
            queries: 50,
            seed: 9,
        });
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.exec_seconds, y.exec_seconds);
            assert_eq!(x.symbolically_relevant, y.symbolically_relevant);
        }
    }
}
