//! Experiment harness for the Sia reproduction: one module (and one
//! binary under `src/bin/`) per table/figure of the paper's evaluation.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | §2 motivating example | [`motivating`] | `exp_motivating` |
//! | Fig 6 case study | [`casestudy`] | `exp_fig6` |
//! | Table 2 efficacy | [`suite`] | `exp_table2` |
//! | Table 3 efficiency | [`suite`] | `exp_table3` |
//! | Fig 7 learning loop | [`suite`] | `exp_fig7` |
//! | Fig 8 sample volumes | [`suite`] | `exp_fig8` |
//! | Fig 9 runtime impact | [`runtime`] | `exp_fig9` |
//! | Table 4 selectivity | [`runtime`] | printed by `exp_fig9` |
//! | §6.7 limitations | — | `exp_limitations` |
//!
//! `exp_all` chains everything. Experiment sizes respect the
//! `SIA_BENCH_QUERIES` / `SIA_BENCH_SF_SMALL` / `SIA_BENCH_SF_LARGE`
//! environment variables so CI can shrink them.

#![warn(missing_docs)]

pub mod casestudy;
pub mod microbench;
pub mod motivating;
pub mod report;
pub mod runtime;
pub mod soak;
pub mod suite;
pub mod util;
