//! End-to-end synthesis benchmarks, mirroring Table 3's per-column-count
//! breakdown: one benchmark per requested subset size on the paper's
//! motivating predicate family.

#![allow(missing_docs)] // criterion_group! expands to undocumented items

use sia_bench::microbench::{BenchmarkId, Criterion};
use sia_bench::{criterion_group, criterion_main};
use sia_core::{SiaConfig, Synthesizer};
use sia_sql::parse_predicate;

fn bench_synthesis_by_columns(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis/by_columns");
    group.sample_size(10);
    let p = parse_predicate(
        "l_shipdate - o_orderdate < 20 \
         AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10 \
         AND l_receiptdate - l_shipdate < 30 \
         AND o_orderdate < DATE '1993-06-01'",
    )
    .unwrap();
    let cases: [(&str, Vec<&str>); 3] = [
        ("one", vec!["l_shipdate"]),
        ("two", vec!["l_shipdate", "l_commitdate"]),
        ("three", vec!["l_shipdate", "l_commitdate", "l_receiptdate"]),
    ];
    for (name, cols) in cases {
        let cols: Vec<String> = cols.iter().map(|s| s.to_string()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(name), &cols, |b, cols| {
            b.iter(|| {
                let mut syn = Synthesizer::new(SiaConfig {
                    max_iterations: 15, // bounded for stable bench times
                    ..SiaConfig::default()
                });
                let r = syn.synthesize(&p, cols).unwrap();
                sia_bench::microbench::black_box(r);
            });
        });
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    // SIA vs SIA_v1 vs SIA_v2 on the one-column task (Table 3's columns).
    let mut group = c.benchmark_group("synthesis/variants");
    group.sample_size(10);
    let p = parse_predicate("l_shipdate - o_orderdate < 20 AND o_orderdate < DATE '1993-06-01'")
        .unwrap();
    let cols = vec!["l_shipdate".to_string()];
    for (name, cfg) in [
        ("sia", SiaConfig::default()),
        ("v1", SiaConfig::v1()),
        ("v2", SiaConfig::v2()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut syn = Synthesizer::new(cfg.clone());
                let r = syn.synthesize(&p, &cols).unwrap();
                sia_bench::microbench::black_box(r);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_synthesis_by_columns, bench_variants);
criterion_main!(benches);
