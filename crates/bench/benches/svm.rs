//! Linear-SVM training and rationalization micro-benchmarks.

#![allow(missing_docs)] // criterion_group! expands to undocumented items

use sia_bench::microbench::{BenchmarkId, Criterion};
use sia_bench::{criterion_group, criterion_main};
use sia_svm::{rationalize, train, Sample, SvmConfig};

fn clustered_samples(n: usize, dim: usize) -> Vec<Sample> {
    // Deterministic separable clusters around ±50 per axis.
    let mut out = Vec::with_capacity(n);
    let mut seed = 0x5eed_u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for i in 0..n {
        let label = i % 2 == 0;
        let base = if label { 50.0 } else { -50.0 };
        let features = (0..dim)
            .map(|_| base + (next() % 40) as f64 - 20.0)
            .collect();
        out.push(Sample::new(features, label));
    }
    out
}

fn bench_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("svm/train");
    for (n, dim) in [(20usize, 1usize), (110, 2), (440, 3)] {
        let samples = clustered_samples(n, dim);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{dim}")),
            &samples,
            |b, s| {
                b.iter(|| {
                    let h = train(s, &SvmConfig::default());
                    assert!(h.accuracy(s) > 0.9);
                });
            },
        );
    }
    group.finish();
}

fn bench_rationalize(c: &mut Criterion) {
    let samples = clustered_samples(110, 3);
    let h = train(&samples, &SvmConfig::default());
    c.bench_function("svm/rationalize", |b| {
        b.iter(|| {
            let ih = rationalize(&h, 64);
            assert!(!ih.is_degenerate());
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_train, bench_rationalize
}
criterion_main!(benches);
