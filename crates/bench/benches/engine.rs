//! Execution-engine benchmarks: filter and join throughput plus the
//! push-down on/off ablation (where the paper's runtime win comes from).

#![allow(missing_docs)] // criterion_group! expands to undocumented items

use sia_bench::microbench::{BenchmarkId, Criterion};
use sia_bench::{criterion_group, criterion_main};
use sia_engine::OptimizerConfig;
use sia_sql::parse_query;
use sia_tpch::{generate, TpchConfig};

fn bench_filter_scan(c: &mut Criterion) {
    let db = generate(&TpchConfig {
        scale_factor: 0.05,
        ..TpchConfig::default()
    });
    let q = parse_query("SELECT * FROM lineitem WHERE l_shipdate < DATE '1995-01-01'").unwrap();
    c.bench_function("engine/filter_scan_sf005", |b| {
        b.iter(|| {
            let r = db.run(&q, OptimizerConfig::default()).unwrap();
            sia_bench::microbench::black_box(r.table.num_rows());
        });
    });
}

fn bench_join(c: &mut Criterion) {
    let db = generate(&TpchConfig {
        scale_factor: 0.05,
        ..TpchConfig::default()
    });
    let q = parse_query("SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey").unwrap();
    c.bench_function("engine/hash_join_sf005", |b| {
        b.iter(|| {
            let r = db.run(&q, OptimizerConfig::default()).unwrap();
            sia_bench::microbench::black_box(r.table.num_rows());
        });
    });
}

/// The Fig 1 ablation: the same rewritten query with push-down enabled vs
/// disabled. The enabled plan filters lineitem before the join.
fn bench_pushdown_ablation(c: &mut Criterion) {
    let db = generate(&TpchConfig {
        scale_factor: 0.05,
        ..TpchConfig::default()
    });
    let q = parse_query(
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey \
         AND l_shipdate < DATE '1993-06-20' \
         AND o_orderdate < DATE '1993-06-01' \
         AND l_shipdate - o_orderdate < 20",
    )
    .unwrap();
    let mut group = c.benchmark_group("engine/pushdown");
    for (name, pushdown) in [("on", true), ("off", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &pushdown, |b, &p| {
            b.iter(|| {
                let config = OptimizerConfig {
                    pushdown: p,
                    ..OptimizerConfig::default()
                };
                let r = db.run(&q, config).unwrap();
                sia_bench::microbench::black_box(r.table.num_rows());
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_filter_scan, bench_join, bench_pushdown_ablation
}
criterion_main!(benches);
