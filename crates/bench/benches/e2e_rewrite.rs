//! The full pipeline as one benchmark: parse → synthesize → rewrite →
//! optimize → execute, on the §2 motivating query.

#![allow(missing_docs)] // criterion_group! expands to undocumented items

use sia_bench::microbench::Criterion;
use sia_bench::runtime::tpch_catalog;
use sia_bench::{criterion_group, criterion_main};
use sia_core::Synthesizer;
use sia_engine::OptimizerConfig;
use sia_sql::parse_query;
use sia_tpch::{generate, TpchConfig};

fn bench_e2e(c: &mut Criterion) {
    let sql = "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey \
               AND l_shipdate - o_orderdate < 20 \
               AND o_orderdate < DATE '1993-06-01' \
               AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10";
    let db = generate(&TpchConfig {
        scale_factor: 0.01,
        ..TpchConfig::default()
    });
    let catalog = tpch_catalog();
    let mut group = c.benchmark_group("e2e");
    group.sample_size(10);
    group.bench_function("parse_synthesize_rewrite_execute", |b| {
        b.iter(|| {
            let q = parse_query(sql).unwrap();
            let mut syn = Synthesizer::default();
            let outcome = sia_core::rewrite_query(&mut syn, &q, &catalog, "lineitem").unwrap();
            let rewritten = outcome.rewritten.expect("rewritable");
            let r = db.run(&rewritten, OptimizerConfig::default()).unwrap();
            sia_bench::microbench::black_box(r.table.num_rows());
        });
    });
    group.bench_function("execute_only_original", |b| {
        let q = parse_query(sql).unwrap();
        b.iter(|| {
            let r = db.run(&q, OptimizerConfig::default()).unwrap();
            sia_bench::microbench::black_box(r.table.num_rows());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
