//! Micro-benchmarks of the SMT substrate: SAT, simplex-backed LIA checks,
//! and Cooper quantifier elimination — including the Cooper-vs-CEGQI
//! ablation for FALSE-sample generation.

#![allow(missing_docs)] // criterion_group! expands to undocumented items

use sia_bench::microbench::{BenchmarkId, Criterion};
use sia_bench::{criterion_group, criterion_main};
use sia_core::{PredEncoder, SampleOutcome, Sampler};
use sia_num::BigRat;
use sia_smt::{eliminate_exists, Formula, LinTerm, QeConfig, Solver, Sort};
use sia_sql::parse_predicate;

fn bench_lia_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/lia_check");
    for vars in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(vars), &vars, |b, &n| {
            b.iter(|| {
                let mut s = Solver::new();
                let vs: Vec<_> = (0..n)
                    .map(|i| s.declare(format!("v{i}"), Sort::Int))
                    .collect();
                // Chain: v0 < v1 < … < v_{n-1} ∧ v_{n-1} < v0 + n (sat).
                let mut f = Formula::True;
                for w in vs.windows(2) {
                    f = f.and(Formula::lt0(LinTerm::var(w[0]).sub(&LinTerm::var(w[1]))));
                }
                f = f.and(Formula::lt0(
                    LinTerm::var(vs[n - 1])
                        .sub(&LinTerm::var(vs[0]))
                        .sub(&LinTerm::constant(BigRat::from(n as i64))),
                ));
                assert!(s.check(&f).is_sat());
            });
        });
    }
    group.finish();
}

fn bench_cooper_qe(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/cooper_qe");
    // The motivating example's projection, the workhorse shape.
    group.bench_function("motivating_projection", |b| {
        let mut enc = PredEncoder::new();
        let p = parse_predicate("a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0").unwrap();
        let pf = enc.encode(&p).unwrap();
        let b1 = enc.value_var("b1");
        b.iter(|| {
            let r = eliminate_exists(&pf, &[b1], &QeConfig::default()).unwrap();
            assert!(r.size() > 0);
        });
    });
    // Non-unit coefficients exercise the δ-normalization path.
    group.bench_function("with_coefficients", |b| {
        let mut enc = PredEncoder::new();
        let p = parse_predicate("3 * a - 2 * b < 10 AND 2 * b - a > 0 AND b < 50").unwrap();
        let pf = enc.encode(&p).unwrap();
        let bv = enc.value_var("b");
        b.iter(|| {
            let r = eliminate_exists(&pf, &[bv], &QeConfig::default()).unwrap();
            assert!(r.size() > 0);
        });
    });
    group.finish();
}

/// The Cooper vs CEGQI ablation: 10 FALSE samples through either path.
fn bench_false_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/false_samples_x10");
    let sql = "a - b < 5 AND b < 0";
    group.bench_function("cooper", |b| {
        b.iter(|| {
            let mut enc = PredEncoder::new();
            let p = parse_predicate(sql).unwrap();
            let pf = enc.encode(&p).unwrap();
            let a = enc.value_var("a");
            let bv = enc.value_var("b");
            let region = sia_core::unsat_region(&pf, &[bv], &QeConfig::default()).unwrap();
            let mut sampler = Sampler::new(region, vec![a], 1);
            for _ in 0..10 {
                assert!(matches!(
                    sampler.sample(enc.solver()),
                    SampleOutcome::Sample(_)
                ));
            }
        });
    });
    group.bench_function("cegqi", |b| {
        use sia_rand::SeedableRng;
        b.iter(|| {
            let mut enc = PredEncoder::new();
            let p = parse_predicate(sql).unwrap();
            let pf = enc.encode(&p).unwrap();
            let a = enc.value_var("a");
            let mut seen = Vec::new();
            let mut rng = sia_rand::rngs::StdRng::seed_from_u64(1);
            for _ in 0..10 {
                let out = sia_core::cegqi::false_sample(
                    enc.solver(),
                    &pf,
                    &[a],
                    &Formula::True,
                    &mut seen,
                    &mut rng,
                    &sia_core::cegqi::CegqiConfig::default(),
                );
                assert!(matches!(out, SampleOutcome::Sample(_)));
            }
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lia_check, bench_cooper_qe, bench_false_sampling
}
criterion_main!(benches);
