//! Static pre-screening of solver queries with `sia-analyze`.
//!
//! The CEGIS loop asks the SMT solver three kinds of question over and
//! over: validity (`p ⇒ p₁`), feasibility (is `p` satisfiable at all), and
//! pairwise redundancy during output simplification. A large share of those
//! are decidable by the abstract-interpretation oracle at a fraction of the
//! cost; this module builds an [`Analyzer`] that mirrors the encoder's type
//! and null-ability assumptions so its verdicts are sound for exactly the
//! formulas the solver would otherwise see.
//!
//! Under the `checked` feature every verdict the analyzer uses to *skip* a
//! solver call is re-asked of the solver anyway, and a disagreement — the
//! analyzer claimed a fact the solver refutes — aborts the process. The
//! `analyze.checks` / `analyze.disagreements` counters make the harness
//! auditable; the bench gate requires the latter to stay at zero.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};

use sia_analyze::{Analyzer, Derivation};
use sia_expr::{DataType, Pred};

use crate::encode::PredEncoder;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enable or disable the static pre-screen (on by default).
///
/// Exists for benchmarking: turning the analyzer off yields the
/// pure-solver baseline the `exp_analyze` experiment compares against.
/// Results must be identical either way — only the cost moves.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the static pre-screen is currently enabled.
pub(crate) fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// An analyzer agreeing with `enc`'s model of the columns mentioned by
/// `preds`: `DOUBLE` columns are real-valued (no integer tightening),
/// everything else — including composite columns, which the encoder sorts
/// as integers — is integer-valued; null-ability follows the encoder's
/// nullable set.
pub(crate) fn analyzer_for(enc: &PredEncoder, preds: &[&Pred]) -> Analyzer {
    let mut cols = BTreeSet::new();
    for p in preds {
        p.collect_columns(&mut cols);
    }
    let real: Vec<String> = cols
        .iter()
        .filter(|c| enc.column_type(c) == DataType::Double)
        .cloned()
        .collect();
    let nullable: Vec<String> = cols
        .iter()
        .filter(|c| enc.nullable_cols().contains(*c))
        .cloned()
        .collect();
    Analyzer::new().with_real(real).with_nullable(nullable)
}

/// Tier-0 static derivation: project the zone fragment of `p` onto the
/// target columns (see [`Analyzer::derive`]). `None` when the pre-screen is
/// disabled or the zone domain gets no purchase on `p`; the caller is
/// responsible for verifying any returned predicate through the exact
/// pipeline before trusting it.
pub(crate) fn derive(enc: &PredEncoder, p: &Pred, cols: &[String]) -> Option<Derivation> {
    if !enabled() {
        return None;
    }
    analyzer_for(enc, &[p]).derive(p, cols)
}

/// Record a solver-skipping verdict and, under `checked`, cross-check it.
///
/// `claim` describes the verdict for the panic message; `refuted` re-asks
/// the solver and must return true only when the solver found a concrete
/// counterexample (an `Unknown` is not a refutation — the analyzer is
/// allowed to know more than a budget-limited solver).
pub(crate) fn audit_verdict(
    counter: sia_obs::Counter,
    count: u64,
    claim: &dyn Fn() -> String,
    refuted: &mut dyn FnMut() -> bool,
) {
    sia_obs::add(counter, count);
    let _ = &claim;
    let _ = &refuted;
    #[cfg(feature = "checked")]
    {
        sia_obs::add(sia_obs::Counter::AnalyzeChecks, 1);
        if refuted() {
            sia_obs::add(sia_obs::Counter::AnalyzeDisagreements, 1);
            panic!("sia-analyze soundness violation: {}", claim());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_sql::parse_predicate;

    #[test]
    fn analyzer_mirrors_encoder_types() {
        let enc = PredEncoder::new()
            .with_types(|c| {
                if c == "d" {
                    DataType::Double
                } else {
                    DataType::Integer
                }
            })
            .with_nullable(["n".to_string()]);
        let p = parse_predicate("d > 0 AND d < 1").unwrap();
        let an = analyzer_for(&enc, &[&p]);
        // 0 < d < 1 is satisfiable for a DOUBLE column.
        assert!(!an.statically_unsat(&p));

        let q = parse_predicate("i > 0 AND i < 1").unwrap();
        let an = analyzer_for(&enc, &[&q]);
        assert!(an.statically_unsat(&q));

        let r = parse_predicate("n <> 0 OR n = 0").unwrap();
        let an = analyzer_for(&enc, &[&r]);
        assert!(!an.statically_true(&r), "nullable n can make this NULL");
    }

    #[test]
    fn audit_verdict_counts() {
        let get = || {
            sia_obs::snapshot()
                .counters
                .iter()
                .find(|(k, _)| *k == sia_obs::Counter::AnalyzeImplied)
                .map_or(0, |(_, v)| *v)
        };
        sia_obs::enable();
        let base = get();
        audit_verdict(
            sia_obs::Counter::AnalyzeImplied,
            1,
            &|| "test".to_string(),
            &mut || false,
        );
        assert!(get() > base);
    }
}
