//! Training-sample generation (§5.3).
//!
//! A [`Sampler`] draws distinct integer tuples over the target columns from
//! a *region* formula: the original predicate `p` for TRUE (satisfaction)
//! samples, or the quantifier-eliminated unsatisfaction region `¬∃others.p`
//! for FALSE samples. A `NotOld` conjunction forces a fresh model each
//! call, exactly as in the paper; on top of that we apply the paper's
//! "additional heuristics" (§5.3) — prefer non-zero values and scatter
//! samples with random box constraints — because solver models otherwise
//! cluster at the first vertex the simplex finds, which starves the SVM of
//! signal.

use sia_num::{BigInt, BigRat};
use sia_rand::rngs::StdRng;
use sia_rand::{Rng, SeedableRng};
use sia_smt::{Formula, LinTerm, SmtResult, Solver, VarId};

/// Outcome of requesting one more sample.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleOutcome {
    /// A fresh tuple (values aligned with the sampler's column order).
    Sample(Vec<BigInt>),
    /// The region holds no tuple that is not already a sample — for FALSE
    /// samples this is the optimality certificate of Lemma 4.
    Exhausted,
    /// The solver gave up within its budget.
    Unknown,
}

/// Draws distinct tuples from a region formula.
#[derive(Debug)]
pub struct Sampler {
    /// Region membership formula (over `vars` and possibly other columns).
    region: Formula,
    /// Solver variables of the target columns, in output order.
    vars: Vec<VarId>,
    /// Tuples already produced (excluded by `NotOld`).
    seen: Vec<Vec<BigInt>>,
    rng: StdRng,
    /// Half-width of the random scatter box.
    box_radius: i64,
    /// Center magnitude for random scatter.
    scatter_range: i64,
}

impl Sampler {
    /// Sampler over `vars` drawing from `region`.
    pub fn new(region: Formula, vars: Vec<VarId>, seed: u64) -> Self {
        Sampler {
            region,
            vars,
            seen: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            box_radius: 40,
            scatter_range: 120,
        }
    }

    /// Tuples produced so far.
    pub fn seen(&self) -> &[Vec<BigInt>] {
        &self.seen
    }

    /// Register externally-produced tuples so `NotOld` excludes them too.
    pub fn mark_seen(&mut self, tuple: Vec<BigInt>) {
        self.seen.push(tuple);
    }

    /// The region formula.
    pub fn region(&self) -> &Formula {
        &self.region
    }

    /// `NotOld` for one tuple: ¬(x₁=v₁ ∧ … ∧ xₖ=vₖ) ⇔ x₁≠v₁ ∨ … ∨ xₖ≠vₖ.
    fn differs_from(&self, tuple: &[BigInt]) -> Formula {
        let mut differs = Formula::False;
        for (v, val) in self.vars.iter().zip(tuple) {
            let t = LinTerm::var(*v).sub(&LinTerm::constant(BigRat::from_int(val.clone())));
            differs = differs.or(Formula::ne0(t));
        }
        differs
    }

    /// `NotOld` over a subset of the seen tuples (by index).
    fn not_old_subset(&self, active: &[usize]) -> Formula {
        Formula::and_all(active.iter().map(|&i| self.differs_from(&self.seen[i])))
    }

    fn scatter_box(&mut self) -> Formula {
        let mut acc = Formula::True;
        for &v in &self.vars {
            let c = self.rng.gen_range(-self.scatter_range..=self.scatter_range);
            let lo = BigRat::from(c - self.box_radius);
            let hi = BigRat::from(c + self.box_radius);
            // lo ≤ v ≤ hi
            acc = acc
                .and(Formula::le0(LinTerm::constant(lo).sub(&LinTerm::var(v))))
                .and(Formula::le0(LinTerm::var(v).sub(&LinTerm::constant(hi))));
        }
        acc
    }

    fn nonzero(&self) -> Formula {
        let mut acc = Formula::True;
        for &v in &self.vars {
            acc = acc.and(Formula::ne0(LinTerm::var(v)));
        }
        acc
    }

    /// Draw one sample from `region ∧ extra`.
    ///
    /// `NotOld` is enforced *lazily*: the solver only sees exclusions for
    /// recent samples plus any older ones it actually tried to reproduce.
    /// Late in a synthesis run the seen-set has hundreds of tuples, almost
    /// none of which still lie inside the (shrinking) counter-example
    /// region — excluding them all eagerly made every check pay for a
    /// formula the size of the entire history.
    pub fn sample_with(&mut self, solver: &mut Solver, extra: &Formula) -> SampleOutcome {
        const RECENT: usize = 8;
        let mut active: Vec<usize> =
            (self.seen.len().saturating_sub(RECENT)..self.seen.len()).collect();
        let mut use_scatter = true;
        // Each round either returns a fresh sample, tightens the active
        // exclusion set by one duplicate, or drops the scatter heuristic;
        // with at worst every seen tuple excluded, it terminates.
        loop {
            let base = self
                .region
                .clone()
                .and(extra.clone())
                .and(self.not_old_subset(&active));
            let model = if use_scatter {
                let scattered = base.clone().and(self.scatter_box()).and(self.nonzero());
                match solver.check(&scattered) {
                    SmtResult::Sat(m) => m,
                    _ => {
                        // Scatter may genuinely be unsatisfiable here;
                        // authoritative answers need the bare region.
                        use_scatter = false;
                        continue;
                    }
                }
            } else {
                match solver.check(&base) {
                    SmtResult::Sat(m) => m,
                    SmtResult::Unsat => {
                        if active.len() == self.seen.len() {
                            return SampleOutcome::Exhausted;
                        }
                        // Region minus the active exclusions is empty; the
                        // real verdict needs the full history excluded.
                        active = (0..self.seen.len()).collect();
                        continue;
                    }
                    SmtResult::Unknown => return SampleOutcome::Unknown,
                }
            };
            let tuple: Vec<BigInt> = self.vars.iter().map(|&v| model.int(v)).collect();
            match self.seen.iter().position(|s| *s == tuple) {
                Some(idx) => {
                    // Stale duplicate: exclude it specifically and retry.
                    active.push(idx);
                }
                None => {
                    self.seen.push(tuple.clone());
                    return SampleOutcome::Sample(tuple);
                }
            }
        }
    }

    /// Draw one sample from the region.
    pub fn sample(&mut self, solver: &mut Solver) -> SampleOutcome {
        self.sample_with(solver, &Formula::True)
    }

    /// Draw up to `n` samples; stops early on exhaustion/unknown.
    pub fn take(&mut self, solver: &mut Solver, n: usize) -> (Vec<Vec<BigInt>>, SampleOutcome) {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.sample(solver) {
                SampleOutcome::Sample(t) => out.push(t),
                other => return (out, other),
            }
        }
        let status = if out.is_empty() {
            SampleOutcome::Exhausted
        } else {
            SampleOutcome::Sample(out.last().unwrap().clone())
        };
        (out, status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::PredEncoder;
    use sia_sql::parse_predicate;

    fn setup(pred: &str, cols: &[&str]) -> (PredEncoder, Sampler) {
        let mut enc = PredEncoder::new();
        let p = parse_predicate(pred).unwrap();
        let f = enc.encode(&p).unwrap();
        let vars: Vec<VarId> = cols.iter().map(|c| enc.value_var(c)).collect();
        let sampler = Sampler::new(f, vars, 42);
        (enc, sampler)
    }

    #[test]
    fn samples_satisfy_region_and_are_distinct() {
        let (mut enc, mut sampler) = setup("a + b < 10 AND a > b", &["a", "b"]);
        let (samples, _) = sampler.take(enc.solver(), 8);
        assert_eq!(samples.len(), 8);
        for s in &samples {
            let (a, b) = (s[0].to_i64().unwrap(), s[1].to_i64().unwrap());
            assert!(a + b < 10 && a > b, "({a},{b}) outside region");
        }
        for i in 0..samples.len() {
            for j in (i + 1)..samples.len() {
                assert_ne!(samples[i], samples[j], "duplicate sample");
            }
        }
    }

    #[test]
    fn finite_region_exhausts() {
        // 0 <= a <= 2: exactly three tuples.
        let (mut enc, mut sampler) = setup("a >= 0 AND a <= 2", &["a"]);
        let (samples, status) = sampler.take(enc.solver(), 10);
        assert_eq!(samples.len(), 3);
        assert_eq!(status, SampleOutcome::Exhausted);
        let mut vals: Vec<i64> = samples.iter().map(|s| s[0].to_i64().unwrap()).collect();
        vals.sort();
        assert_eq!(vals, vec![0, 1, 2]);
    }

    #[test]
    fn sample_with_extra_constraint() {
        let (mut enc, mut sampler) = setup("a > 0", &["a"]);
        let extra_var = sampler.vars[0];
        // extra: a > 100
        let extra =
            Formula::lt0(LinTerm::constant(BigRat::from(100)).sub(&LinTerm::var(extra_var)));
        match sampler.sample_with(enc.solver(), &extra) {
            SampleOutcome::Sample(t) => assert!(t[0].to_i64().unwrap() > 100),
            other => panic!("expected sample, got {other:?}"),
        }
    }

    #[test]
    fn mark_seen_excludes() {
        let (mut enc, mut sampler) = setup("a >= 0 AND a <= 1", &["a"]);
        sampler.mark_seen(vec![BigInt::zero()]);
        let (samples, status) = sampler.take(enc.solver(), 5);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0][0], BigInt::one());
        assert_eq!(status, SampleOutcome::Exhausted);
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut enc1, mut s1) = setup("a - b < 20 AND b < 0", &["a", "b"]);
        let (mut enc2, mut s2) = setup("a - b < 20 AND b < 0", &["a", "b"]);
        let (x, _) = s1.take(enc1.solver(), 5);
        let (y, _) = s2.take(enc2.solver(), 5);
        assert_eq!(x, y);
    }

    #[test]
    fn scatter_spreads_samples() {
        // On an unbounded region, samples should not be consecutive
        // integers (the no-heuristic failure mode).
        let (mut enc, mut sampler) = setup("a > b", &["a", "b"]);
        let (samples, _) = sampler.take(enc.solver(), 6);
        assert_eq!(samples.len(), 6);
        let spread: i64 = {
            let vals: Vec<i64> = samples.iter().map(|s| s[0].to_i64().unwrap()).collect();
            vals.iter().max().unwrap() - vals.iter().min().unwrap()
        };
        assert!(spread > 5, "samples too clustered: {samples:?}");
    }
}
