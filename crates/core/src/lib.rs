//! # Sia: synthesizing valid, optimal predicates over chosen columns
//!
//! The core algorithm of *Sia: Optimizing Queries using Learned
//! Predicates* (SIGMOD 2021). Given a predicate `p` over columns `Cols`
//! and a subset `Cols′ ⊆ Cols`, [`Synthesizer::synthesize`] produces a
//! predicate `p₁` over `Cols′` such that
//!
//! * **valid** — `p ⇒ p₁` (Def 2: the rewritten query keeps every tuple
//!   the original query keeps), verified with an SMT solver under
//!   three-valued logic, and
//! * **optimal** whenever certified — no *unsatisfaction tuple* (Def 4)
//!   is accepted (Lemma 4), decided via Cooper quantifier elimination.
//!
//! The synthesis loop is counter-example guided (Alg 1): an SMT solver
//! generates TRUE/FALSE training samples, a linear SVM learns a candidate
//! (Alg 2), verification either certifies it or yields counter-examples
//! that sharpen the next round.
//!
//! Module map: [`encode`] (SQL predicate → SMT formula, §5.2),
//! [`samples`] (§5.3), [`learn`](mod@crate::learn) (§5.4), [`verify`](mod@crate::verify) + [`cegqi`] (§5.5),
//! [`synth`] (Alg 1), [`baselines`] (transitive closure / constant
//! propagation), [`rewrite`] (query-level integration).

#![warn(missing_docs)]

pub mod baselines;
pub mod cegqi;
pub mod encode;
pub mod learn;
pub(crate) mod prescreen;
pub mod rewrite;
pub mod samples;
pub mod synth;
pub mod verify;

pub use encode::{EncodeError, PredEncoder};
pub use learn::{learn, LearnConfig, LearnOutput, LearnedPlane};
pub use prescreen::set_enabled as set_static_prescreen;
pub use rewrite::{rewrite_query, RewriteError, RewriteOutcome};
pub use samples::{SampleOutcome, Sampler};
pub use synth::{
    FalseSampleStrategy, SiaConfig, SynthStats, SynthesisError, SynthesisResult, Synthesizer,
};
pub use verify::{remove_redundant_conjuncts, unsat_region, verify_implies, Validity};
