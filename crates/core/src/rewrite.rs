//! End-to-end query rewriting: find the filter predicate of a query,
//! synthesize a valid reduction onto one table's columns, and inject it
//! back into the WHERE clause (Fig 1 / Fig 5's outer loop).

use crate::synth::{SynthesisError, SynthesisResult, Synthesizer};
use sia_expr::{Catalog, CmpOp, Expr, Pred};
use sia_sql::Query;
use std::collections::BTreeSet;

/// Result of a rewrite attempt.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// The rewritten query (original plus synthesized conjunct), when a
    /// non-trivial predicate was found.
    pub rewritten: Option<Query>,
    /// The synthesized predicate.
    pub synthesized: Option<Pred>,
    /// The columns the synthesis targeted.
    pub target_columns: Vec<String>,
    /// Full synthesis statistics.
    pub synthesis: SynthesisResult,
}

/// Why the query could not be rewritten.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The query has no WHERE clause or no non-join conjunct.
    NoPredicate,
    /// The target table contributes no column to the filter predicate.
    NoTargetColumns(String),
    /// Synthesis failed.
    Synthesis(SynthesisError),
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::NoPredicate => write!(f, "query has no rewritable predicate"),
            RewriteError::NoTargetColumns(t) => {
                write!(f, "table {t:?} contributes no columns to the predicate")
            }
            RewriteError::Synthesis(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<SynthesisError> for RewriteError {
    fn from(e: SynthesisError) -> Self {
        RewriteError::Synthesis(e)
    }
}

/// True iff the conjunct is a join condition: an equality between single
/// columns of two *different* tables.
pub fn is_join_conjunct(p: &Pred, catalog: &Catalog) -> bool {
    let Pred::Cmp {
        op: CmpOp::Eq,
        lhs: Expr::Column(a),
        rhs: Expr::Column(b),
    } = p
    else {
        return false;
    };
    match (catalog.resolve(a), catalog.resolve(b)) {
        (Ok((ta, _)), Ok((tb, _))) => ta.name != tb.name,
        _ => false,
    }
}

/// Split a WHERE predicate into (join conjuncts, filter predicate).
pub fn split_predicate(p: &Pred, catalog: &Catalog) -> (Vec<Pred>, Option<Pred>) {
    let mut joins = Vec::new();
    let mut filters = Vec::new();
    for conj in p.conjuncts() {
        if is_join_conjunct(conj, catalog) {
            joins.push(conj.clone());
        } else {
            filters.push(conj.clone());
        }
    }
    let filter = if filters.is_empty() {
        None
    } else {
        Some(Pred::and_all(filters))
    };
    (joins, filter)
}

/// Columns of `p` that belong to `table` according to the catalog.
pub fn columns_of_table(p: &Pred, catalog: &Catalog, table: &str) -> Vec<String> {
    let mut out = BTreeSet::new();
    for c in p.columns() {
        if let Ok((t, _)) = catalog.resolve(&c) {
            if t.name == table {
                out.insert(c);
            }
        }
    }
    out.into_iter().collect()
}

/// Rewrite `query` by synthesizing a predicate over `target_table`'s
/// columns that is implied by the query's filter predicate, enabling
/// predicate push-down below the join for that table.
pub fn rewrite_query(
    synthesizer: &mut Synthesizer,
    query: &Query,
    catalog: &Catalog,
    target_table: &str,
) -> Result<RewriteOutcome, RewriteError> {
    let Some(where_pred) = &query.predicate else {
        return Err(RewriteError::NoPredicate);
    };
    let (_joins, filter) = split_predicate(where_pred, catalog);
    let Some(filter) = filter else {
        return Err(RewriteError::NoPredicate);
    };
    let target_cols = columns_of_table(&filter, catalog, target_table);
    if target_cols.is_empty() {
        return Err(RewriteError::NoTargetColumns(target_table.to_string()));
    }
    // Synthesize per single column first, then over the full set, and
    // conjoin every valid result. Single-column runs converge to their
    // exact optimum (one boundary to pinch), and the paper's own Q2 is
    // precisely such a conjunction: two per-column bounds plus one
    // multi-column difference (§2).
    let mut subsets: Vec<Vec<String>> = target_cols.iter().map(|c| vec![c.clone()]).collect();
    if target_cols.len() > 1 {
        subsets.push(target_cols.clone());
    }
    let mut combined = Pred::true_();
    let mut synthesis = None;
    let mut all_optimal = true;
    let mut agg_stats = crate::synth::SynthStats::default();
    for subset in &subsets {
        let r = synthesizer.synthesize(&filter, subset)?;
        agg_stats.iterations += r.stats.iterations;
        agg_stats.true_samples += r.stats.true_samples;
        agg_stats.false_samples += r.stats.false_samples;
        agg_stats.generation_time += r.stats.generation_time;
        agg_stats.learning_time += r.stats.learning_time;
        agg_stats.validation_time += r.stats.validation_time;
        all_optimal &= r.optimal;
        if let Some(p) = &r.predicate {
            if !p.is_true() {
                combined = combined.and(p.clone());
            }
        }
        synthesis = Some(r);
    }
    let mut synthesis = synthesis.expect("at least one subset");
    synthesis.stats = agg_stats;
    synthesis.optimal = all_optimal;
    if !combined.is_true() {
        // Strip conjuncts subsumed across subsets.
        let mut enc = crate::encode::PredEncoder::new();
        combined = crate::verify::remove_redundant_conjuncts(&mut enc, &combined);
    }
    synthesis.predicate = if combined.is_true() {
        None
    } else {
        Some(combined.clone())
    };
    let (rewritten, synthesized) = if combined.is_true() {
        (None, None)
    } else {
        (
            Some(query.with_extra_predicate(combined.clone())),
            Some(combined),
        )
    };
    Ok(RewriteOutcome {
        rewritten,
        synthesized,
        target_columns: target_cols,
        synthesis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_expr::{ColumnDef, DataType, Schema};
    use sia_sql::parse_query;

    fn tpch_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(
            "orders",
            Schema::new(vec![
                ColumnDef::new("o_orderkey", DataType::Integer),
                ColumnDef::new("o_orderdate", DataType::Date),
            ]),
        );
        cat.add_table(
            "lineitem",
            Schema::new(vec![
                ColumnDef::new("l_orderkey", DataType::Integer),
                ColumnDef::new("l_shipdate", DataType::Date),
                ColumnDef::new("l_commitdate", DataType::Date),
                ColumnDef::new("l_receiptdate", DataType::Date),
            ]),
        );
        cat
    }

    #[test]
    fn join_detection() {
        let cat = tpch_catalog();
        let q = parse_query(
            "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey \
             AND l_shipdate - o_orderdate < 20",
        )
        .unwrap();
        let (joins, filter) = split_predicate(q.predicate.as_ref().unwrap(), &cat);
        assert_eq!(joins.len(), 1);
        assert_eq!(filter.unwrap().to_string(), "l_shipdate - o_orderdate < 20");
    }

    #[test]
    fn columns_of_table_resolution() {
        let cat = tpch_catalog();
        let q = parse_query(
            "SELECT * FROM lineitem, orders WHERE l_shipdate - o_orderdate < 20 \
             AND l_commitdate < DATE '1995-01-01'",
        )
        .unwrap();
        let p = q.predicate.unwrap();
        assert_eq!(
            columns_of_table(&p, &cat, "lineitem"),
            vec!["l_commitdate".to_string(), "l_shipdate".to_string()]
        );
        assert_eq!(
            columns_of_table(&p, &cat, "orders"),
            vec!["o_orderdate".to_string()]
        );
    }

    #[test]
    fn motivating_query_rewrites() {
        let cat = tpch_catalog();
        // §2's Q1 restricted to two date columns (keeps the test fast).
        let q = parse_query(
            "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey \
             AND l_shipdate - o_orderdate < 20 AND o_orderdate < DATE '1993-06-01'",
        )
        .unwrap();
        let mut syn = Synthesizer::default();
        let out = rewrite_query(&mut syn, &q, &cat, "lineitem").unwrap();
        let pred = out.synthesized.expect("a pushed-down predicate");
        // It must only use lineitem columns…
        assert!(pred.over_columns(&["l_shipdate".to_string()]));
        // …and express l_shipdate < 1993-06-20 (day 8571).
        let cutoff = sia_expr::Date::parse("1993-06-20").unwrap().to_days();
        use sia_expr::{eval_pred, Value};
        use std::collections::HashMap;
        for (d, expect) in [
            (cutoff - 1, true),
            (cutoff - 100, true),
            (cutoff, false),
            (cutoff + 50, false),
        ] {
            let m: HashMap<String, Value> = [("l_shipdate".to_string(), Value::Int(d))]
                .into_iter()
                .collect();
            assert_eq!(eval_pred(&pred, &m), Some(expect), "at day {d}");
        }
        let rewritten = out.rewritten.unwrap();
        assert!(rewritten.to_string().len() > q.to_string().len());
    }

    #[test]
    fn no_target_columns_error() {
        let cat = tpch_catalog();
        let q = parse_query(
            "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey \
             AND o_orderdate < DATE '1993-06-01'",
        )
        .unwrap();
        let mut syn = Synthesizer::default();
        assert_eq!(
            rewrite_query(&mut syn, &q, &cat, "lineitem").unwrap_err(),
            RewriteError::NoTargetColumns("lineitem".to_string())
        );
    }

    #[test]
    fn no_predicate_error() {
        let cat = tpch_catalog();
        let q = parse_query("SELECT * FROM lineitem").unwrap();
        let mut syn = Synthesizer::default();
        assert_eq!(
            rewrite_query(&mut syn, &q, &cat, "lineitem").unwrap_err(),
            RewriteError::NoPredicate
        );
    }
}
