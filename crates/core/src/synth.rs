//! The `Synthesize` procedure (Alg 1): counter-example guided learning of
//! a valid, optimal dimensionality reduction.

use crate::cegqi::{self, CegqiConfig};
use crate::encode::{EncodeError, PredEncoder};
use crate::learn::{learn, LearnConfig};
use crate::samples::{SampleOutcome, Sampler};
use crate::verify::{unsat_region, verify_implies, Validity};
use sia_expr::{col, CmpOp, Expr, Pred};
use sia_num::BigInt;
use sia_rand::rngs::StdRng;
use sia_rand::SeedableRng;
use sia_smt::{Budget, Formula, QeConfig, VarId};
use std::time::{Duration, Instant};

/// How FALSE samples (unsatisfaction tuples) are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FalseSampleStrategy {
    /// Cooper quantifier elimination: the unsatisfaction region is
    /// computed once, exactly; sampling and the optimality check are then
    /// plain satisfiability queries. Falls back to CEGQI when elimination
    /// exceeds its budget.
    #[default]
    CooperQe,
    /// Model-based guess-and-verify (see [`crate::cegqi`]).
    Cegqi,
}

/// Synthesis configuration. [`SiaConfig::default`] matches the paper's
/// SIA row in Table 1 (max 41 iterations, 10+10 initial samples, 5 new
/// samples per iteration); [`SiaConfig::v1`] and [`SiaConfig::v2`] are the
/// non-iterative baselines.
#[derive(Debug, Clone)]
pub struct SiaConfig {
    /// Maximum learning-loop iterations (Alg 1's `max`).
    pub max_iterations: u32,
    /// Initial TRUE sample count.
    pub initial_true: usize,
    /// Initial FALSE sample count.
    pub initial_false: usize,
    /// Counter-examples generated per iteration.
    pub per_iteration: usize,
    /// Learner settings (SVM, rationalization, disjunct budget).
    pub learn: LearnConfig,
    /// Quantifier-elimination budgets.
    pub qe: QeConfig,
    /// FALSE-sample strategy.
    pub false_strategy: FalseSampleStrategy,
    /// CEGQI budget (fallback / alternative strategy).
    pub cegqi: CegqiConfig,
    /// RNG seed for sample diversification.
    pub seed: u64,
    /// Deadline/cancel token for the whole run. Cloned into the SMT
    /// solver (whose CDCL/simplex loops poll it) and checked between
    /// CEGIS phases; exhaustion surfaces as
    /// [`SynthesisError::Timeout`]. Unlimited by default.
    pub budget: Budget,
}

impl Default for SiaConfig {
    fn default() -> Self {
        SiaConfig {
            max_iterations: 41,
            initial_true: 10,
            initial_false: 10,
            per_iteration: 5,
            learn: LearnConfig::default(),
            qe: QeConfig::default(),
            false_strategy: FalseSampleStrategy::default(),
            cegqi: CegqiConfig::default(),
            seed: 0xC0FFEE,
            budget: Budget::unlimited(),
        }
    }
}

impl SiaConfig {
    /// The SIA_v1 baseline: one iteration, 110 + 110 initial samples.
    pub fn v1() -> Self {
        SiaConfig {
            max_iterations: 1,
            initial_true: 110,
            initial_false: 110,
            per_iteration: 0,
            ..SiaConfig::default()
        }
    }

    /// The SIA_v2 baseline: one iteration, 220 + 220 initial samples.
    pub fn v2() -> Self {
        SiaConfig {
            max_iterations: 1,
            initial_true: 220,
            initial_false: 220,
            per_iteration: 0,
            ..SiaConfig::default()
        }
    }
}

/// Timing and volume statistics for one synthesis run (Table 3, Figs 7–8).
#[derive(Debug, Clone, Default)]
pub struct SynthStats {
    /// Learning-loop iterations executed.
    pub iterations: u32,
    /// TRUE samples at the final iteration.
    pub true_samples: usize,
    /// FALSE samples at the final iteration.
    pub false_samples: usize,
    /// Time in sample/counter-example generation (solver models + QE).
    pub generation_time: Duration,
    /// Time training SVMs.
    pub learning_time: Duration,
    /// Time in validity/optimality checks.
    pub validation_time: Duration,
}

/// Result of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The synthesized valid predicate over the requested columns, or
    /// `None` when only the trivial predicate TRUE was found (the paper's
    /// NULL result).
    pub predicate: Option<Pred>,
    /// Whether the predicate was certified optimal (Lemma 4: no
    /// unsatisfaction tuple is accepted).
    pub optimal: bool,
    /// Whether the result was produced (in whole or as the dominant part)
    /// by static zone projection rather than CEGIS: either the derivation
    /// was exact and returned directly, or a partial derivation bounded
    /// the search so tightly that sampling finished it off exactly.
    pub derived_static: bool,
    /// Run statistics.
    pub stats: SynthStats,
}

/// Why synthesis could not run at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// The predicate could not be encoded (non-linear, unsupported type).
    Encode(EncodeError),
    /// A requested column does not occur in the predicate, so no
    /// non-trivial reduction over it exists (Def 2 requires
    /// `Cols′ ⊆ Cols`).
    ColumnNotInPredicate(String),
    /// No target columns were given.
    NoColumns,
    /// The run's [`Budget`] (deadline or cancellation) was exhausted
    /// before synthesis completed.
    Timeout,
    /// An internal failure that says nothing about the request itself
    /// (today: an injected `synth.run` fault). Callers may treat it as
    /// recoverable and fall back to the original predicate.
    Internal(String),
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::Encode(e) => write!(f, "{e}"),
            SynthesisError::ColumnNotInPredicate(c) => {
                write!(f, "column {c:?} does not occur in the predicate")
            }
            SynthesisError::NoColumns => write!(f, "no target columns given"),
            SynthesisError::Timeout => write!(f, "synthesis budget exhausted (timeout)"),
            SynthesisError::Internal(msg) => write!(f, "internal synthesis failure: {msg}"),
        }
    }
}

impl std::error::Error for SynthesisError {}

impl From<EncodeError> for SynthesisError {
    fn from(e: EncodeError) -> Self {
        SynthesisError::Encode(e)
    }
}

/// The Sia synthesizer (Fig 5's ① component).
#[derive(Debug, Default)]
pub struct Synthesizer {
    /// Configuration.
    pub config: SiaConfig,
}

impl Synthesizer {
    /// Synthesizer with the given configuration.
    pub fn new(config: SiaConfig) -> Self {
        Synthesizer { config }
    }

    /// Synthesize a valid (ideally optimal) predicate over `cols`, implied
    /// by `p`. All columns are treated as INTEGER/DATE (integral); for
    /// custom types use [`Synthesizer::synthesize_with_encoder`].
    pub fn synthesize(
        &mut self,
        p: &Pred,
        cols: &[String],
    ) -> Result<SynthesisResult, SynthesisError> {
        let mut enc = PredEncoder::new();
        self.synthesize_with_encoder(&mut enc, p, cols)
    }

    /// Synthesize with a caller-prepared encoder (column types, nullable
    /// sets).
    pub fn synthesize_with_encoder(
        &mut self,
        enc: &mut PredEncoder,
        p: &Pred,
        cols: &[String],
    ) -> Result<SynthesisResult, SynthesisError> {
        if cols.is_empty() {
            return Err(SynthesisError::NoColumns);
        }
        let p_cols = p.columns();
        for c in cols {
            if !p_cols.contains(c) {
                return Err(SynthesisError::ColumnNotInPredicate(c.clone()));
            }
        }
        let mut stats = SynthStats::default();
        // Thread the deadline/cancel token into the solver so its CDCL
        // and simplex loops poll it; the driver re-checks it between
        // phases and converts exhaustion into an explicit Timeout.
        let budget = self.config.budget.clone();
        enc.solver().budget = budget.clone();
        macro_rules! bail_if_exhausted {
            () => {
                if budget.is_exhausted() {
                    return Err(SynthesisError::Timeout);
                }
            };
        }
        bail_if_exhausted!();
        // Phase spans: `synth` is the root; `generate` / `learn` /
        // `verify` / `optimality` are its children, with `smt.check`,
        // `qe.eliminate`, and `svm.train` nesting below (the `--metrics`
        // breakdown). Guards close on every early return.
        let _synth_span = sia_obs::span("synth");
        // Chaos hook: an injected error/panic/stall at the very top of a
        // run, after request validation (so injected faults model
        // synthesis failures, not malformed requests). Inside the `synth`
        // span so an injected stall is attributed to synthesis time in
        // phase breakdowns, like the real stalls it stands in for.
        if let Some(msg) = sia_fault::fire("synth.run") {
            return Err(SynthesisError::Internal(msg));
        }
        let gen_span = sia_obs::span("generate");
        let gen_start = Instant::now();
        let p_f = enc.encode(p)?;
        // Degenerate: p unsatisfiable ⇒ FALSE is a valid, optimal
        // reduction (it is implied by p and rejects everything). The
        // static analyzer answers most such cases — contradictory bounds,
        // integer gaps, fractional equalities — without a solver call.
        let analyzer = crate::prescreen::analyzer_for(enc, &[p]);
        let mut known_unsat = false;
        if crate::prescreen::enabled() && analyzer.statically_unsat(p) {
            known_unsat = true;
            crate::prescreen::audit_verdict(
                sia_obs::Counter::AnalyzeUnsat,
                1,
                &|| format!("claimed `{p}` is statically unsatisfiable, solver found a model"),
                &mut || matches!(enc.solver().check(&p_f), sia_smt::SmtResult::Sat(_)),
            );
        }
        let p_unsat = known_unsat || {
            sia_obs::add(sia_obs::Counter::AnalyzeFallbacks, 1);
            enc.solver().check(&p_f).is_unsat()
        };
        if p_unsat {
            stats.generation_time += gen_start.elapsed();
            return Ok(SynthesisResult {
                predicate: Some(Pred::false_()),
                optimal: true,
                derived_static: false,
                stats,
            });
        }
        bail_if_exhausted!();
        let keep: Vec<VarId> = cols.iter().map(|c| enc.value_var(c)).collect();
        let arith_vars: Vec<VarId> = enc.columns().map(|(_, v)| v).collect();
        let others: Vec<VarId> = arith_vars
            .iter()
            .copied()
            .filter(|v| !keep.contains(v))
            .collect();
        // Tier 0: static derivation. When the difference-bound fragment of
        // `p` is rich enough, projecting its closed zone onto the target
        // columns *is* the quantifier elimination ∃ others . p — no
        // sampling, no learning, no SVM. An exact derivation is verified
        // through the exact pipeline (`verify_implies`) and returned
        // directly; a partial one (sound bounds, possibly not optimal)
        // seeds the sampler and warm-starts the CEGIS loop. Under
        // `checked`, exact discharges are additionally cross-checked
        // against a solver-computed unsatisfaction region.
        let mut warm_bounds: Option<Pred> = None;
        let derivation = {
            let _derive_span = sia_obs::span("derive");
            crate::prescreen::derive(enc, p, cols)
        };
        match derivation {
            Some(sia_analyze::Derivation::Exact(q)) if !q.is_false() => {
                let val_start = Instant::now();
                let ok = q.is_true() || verify_implies(enc, p, &q)? == Validity::Valid;
                stats.validation_time += val_start.elapsed();
                if ok {
                    let q_f = enc.encode(&q)?;
                    crate::prescreen::audit_verdict(
                        sia_obs::Counter::AnalyzeDeriveStatic,
                        1,
                        &|| format!("statically derived `{q}` is not optimal for `{p}`"),
                        &mut || {
                            // Refuted iff the derived predicate accepts a
                            // point of the exact unsatisfaction region. A
                            // QE budget failure is not a refutation.
                            let Ok(region) = unsat_region(&p_f, &others, &self.config.qe) else {
                                return false;
                            };
                            matches!(
                                enc.solver().check(&q_f.clone().and(region)),
                                sia_smt::SmtResult::Sat(_)
                            )
                        },
                    );
                    stats.generation_time += gen_start.elapsed();
                    return Ok(SynthesisResult {
                        predicate: if q.is_true() { None } else { Some(q) },
                        optimal: true,
                        derived_static: true,
                        stats,
                    });
                }
                sia_obs::add(sia_obs::Counter::AnalyzeDeriveMiss, 1);
            }
            Some(sia_analyze::Derivation::Bounds(q)) => {
                let val_start = Instant::now();
                let ok = verify_implies(enc, p, &q)? == Validity::Valid;
                stats.validation_time += val_start.elapsed();
                if ok {
                    sia_obs::add(sia_obs::Counter::AnalyzeDerivePartial, 1);
                    warm_bounds = Some(q);
                } else {
                    sia_obs::add(sia_obs::Counter::AnalyzeDeriveMiss, 1);
                }
            }
            Some(sia_analyze::Derivation::Exact(_)) => {
                // Exact(FALSE) cannot be sound here — p was just proven
                // satisfiable — so treat it as a miss and fall through to
                // the full pipeline, which will surface the disagreement.
                sia_obs::add(sia_obs::Counter::AnalyzeDeriveMiss, 1);
            }
            None => {
                if crate::prescreen::enabled() {
                    sia_obs::add(sia_obs::Counter::AnalyzeDeriveMiss, 1);
                }
            }
        }
        // Build the FALSE-sample machinery.
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x9e3779b97f4a7c15);
        let false_region: Option<Formula> = match self.config.false_strategy {
            // On QE budget errors this is None and we fall back to CEGQI.
            // Statically-dead disjuncts of p are pruned first: they admit
            // no TRUE tuple, so the projection ∃ others . p is unchanged
            // while Cooper elimination skips their atoms entirely.
            FalseSampleStrategy::CooperQe => {
                let (qe_pred, pruned) = if crate::prescreen::enabled() {
                    analyzer.prune_never_true_disjuncts(p)
                } else {
                    (p.clone(), 0)
                };
                let qe_f = if pruned > 0 {
                    let f = enc.encode(&qe_pred)?;
                    crate::prescreen::audit_verdict(
                        sia_obs::Counter::AnalyzeDisjunctsPruned,
                        pruned as u64,
                        &|| {
                            format!(
                                "pruned disjuncts of `{p}` changed its models (kept `{qe_pred}`)"
                            )
                        },
                        &mut || {
                            matches!(
                                enc.solver().check(&p_f.clone().and(f.clone().not())),
                                sia_smt::SmtResult::Sat(_)
                            )
                        },
                    );
                    f
                } else {
                    p_f.clone()
                };
                unsat_region(&qe_f, &others, &self.config.qe).ok()
            }
            FalseSampleStrategy::Cegqi => None,
        };
        let mut ts_sampler = Sampler::new(p_f.clone(), keep.clone(), self.config.seed);
        let mut fs_sampler = false_region
            .clone()
            .map(|r| Sampler::new(r, keep.clone(), self.config.seed ^ 1));
        let mut cegqi_seen: Vec<Vec<BigInt>> = Vec::new();
        // Closure-free helper for FALSE sampling under an extra constraint.
        // Cooper elimination with non-unit coefficients can produce regions
        // whose divisibility structure overwhelms the solver; a sampling
        // verdict of Unknown permanently degrades to the CEGQI path, which
        // only ever solves the (easy) original formula with grounded
        // candidates.
        macro_rules! false_sample {
            ($enc:expr, $extra:expr) => {{
                let mut out = match &mut fs_sampler {
                    Some(s) => s.sample_with($enc.solver(), $extra),
                    None => cegqi::false_sample(
                        $enc.solver(),
                        &p_f,
                        &keep,
                        $extra,
                        &mut cegqi_seen,
                        &mut rng,
                        &self.config.cegqi,
                    ),
                };
                if matches!(out, SampleOutcome::Unknown) {
                    if let Some(s) = fs_sampler.take() {
                        cegqi_seen.extend(s.seen().iter().cloned());
                        out = cegqi::false_sample(
                            $enc.solver(),
                            &p_f,
                            &keep,
                            $extra,
                            &mut cegqi_seen,
                            &mut rng,
                            &self.config.cegqi,
                        );
                    }
                }
                out
            }};
        }
        // Initial TRUE samples. A finite satisfaction region short-circuits
        // to the exact disjunction-of-equalities predicate (§5.3).
        let mut ts: Vec<Vec<BigInt>> = Vec::new();
        let mut exhausted_true = false;
        for _ in 0..self.config.initial_true {
            match ts_sampler.sample(enc.solver()) {
                SampleOutcome::Sample(t) => ts.push(t),
                SampleOutcome::Exhausted => {
                    exhausted_true = true;
                    break;
                }
                SampleOutcome::Unknown => {
                    bail_if_exhausted!();
                    break;
                }
            }
        }
        if exhausted_true {
            stats.generation_time += gen_start.elapsed();
            stats.true_samples = ts.len();
            let pred = exact_disjunction(cols, &ts);
            return Ok(SynthesisResult {
                predicate: Some(pred),
                optimal: true,
                derived_static: false,
                stats,
            });
        }
        // Initial FALSE samples. An empty unsatisfaction region means the
        // trivial predicate TRUE is already optimal — nothing useful to
        // synthesize (the paper's NULL result, and the negative case of
        // the case study's "symbolically relevant" test).
        // A partial derivation `q` restricts sampling to its interior: any
        // unsatisfaction tuple outside q is already rejected by q, so only
        // the ones q still accepts can drive further progress.
        let false_extra = match &warm_bounds {
            Some(q) => enc.encode(q)?,
            None => Formula::True,
        };
        let mut fs: Vec<Vec<BigInt>> = Vec::new();
        let mut exhausted_false = false;
        for _ in 0..self.config.initial_false {
            match false_sample!(enc, &false_extra) {
                SampleOutcome::Sample(t) => fs.push(t),
                SampleOutcome::Exhausted => {
                    exhausted_false = true;
                    break;
                }
                SampleOutcome::Unknown => {
                    bail_if_exhausted!();
                    break;
                }
            }
        }
        // Accumulate (never overwrite) so the initial segment and every
        // later counter-example round all contribute to the total.
        stats.generation_time += gen_start.elapsed();
        drop(gen_span);
        sia_obs::add(sia_obs::Counter::CegisTrueSamples, ts.len() as u64);
        sia_obs::add(sia_obs::Counter::CegisFalseSamples, fs.len() as u64);
        if exhausted_false {
            let derived_static = warm_bounds.is_some();
            if fs.is_empty() {
                // No unsatisfaction tuple inside the warm bounds: the
                // bounds themselves (or trivial TRUE without them) are
                // already optimal.
                return Ok(SynthesisResult {
                    predicate: warm_bounds,
                    optimal: true,
                    derived_static,
                    stats,
                });
            }
            // Finite unsatisfaction set: its complement — within the warm
            // bounds when present — is the optimal reduction (§5.3).
            stats.false_samples = fs.len();
            let neg = exact_disjunction(cols, &fs).not();
            let pred = match warm_bounds {
                Some(q) => q.and(neg),
                None => neg,
            };
            return Ok(SynthesisResult {
                predicate: Some(pred),
                optimal: true,
                derived_static,
                stats,
            });
        }
        // The counter-example guided learning loop (Alg 1), warm-started
        // from any partially derived bounds. p₁ (None = trivial TRUE).
        let mut valid_pred: Option<Pred> = warm_bounds;
        let mut optimal = false;
        while stats.iterations < self.config.max_iterations {
            bail_if_exhausted!();
            stats.iterations += 1;
            sia_obs::add(sia_obs::Counter::CegisRounds, 1);
            if sia_obs::enabled() {
                #[allow(clippy::cast_precision_loss)]
                sia_obs::record(sia_obs::Hist::CegisRoundTrue, ts.len() as f64);
                #[allow(clippy::cast_precision_loss)]
                sia_obs::record(sia_obs::Hist::CegisRoundFalse, fs.len() as f64);
            }
            // Learn (Alg 2).
            let learn_start = Instant::now();
            let learned = {
                let _learn_span = sia_obs::span("learn");
                learn(cols, &ts, &fs, &self.config.learn)
            };
            stats.learning_time += learn_start.elapsed();
            let Some(learned) = learned else { break };
            // Verify (§5.5). Alg 2 routinely emits planes subsumed by
            // later ones; strip them first so p₃ and the final output
            // stay readable.
            let val_start = Instant::now();
            let (learned_pred, validity) = {
                let _verify_span = sia_obs::span("verify");
                let lp = crate::verify::remove_redundant_disjuncts(enc, &learned.pred);
                let v = verify_implies(enc, p, &lp)?;
                (lp, v)
            };
            stats.validation_time += val_start.elapsed();
            match validity {
                Validity::Valid => {
                    // CounterF (optimality probe): unsatisfaction tuples
                    // accepted by p3.
                    let _opt_span = sia_obs::span("optimality");
                    let p3 = match &valid_pred {
                        None => learned_pred.clone(),
                        Some(p1) => p1.clone().and(learned_pred.clone()),
                    };
                    let gen_start = Instant::now();
                    let p3_f = enc.encode(&p3)?;
                    let mut new_false = Vec::new();
                    let mut certified = false;
                    let mut unknown = false;
                    for _ in 0..self.config.per_iteration.max(1) {
                        match false_sample!(enc, &p3_f) {
                            SampleOutcome::Sample(t) => new_false.push(t),
                            SampleOutcome::Exhausted => {
                                certified = new_false.is_empty();
                                break;
                            }
                            SampleOutcome::Unknown => {
                                unknown = true;
                                break;
                            }
                        }
                    }
                    stats.generation_time += gen_start.elapsed();
                    if unknown {
                        bail_if_exhausted!();
                    }
                    if certified {
                        // `NotOld` hides unsatisfaction tuples we have
                        // already drawn; if p3 still accepts one of them
                        // it is not optimal (the learner could not
                        // separate it, §6.7) — and no *new* sample can
                        // drive further progress, so stop either way.
                        optimal = !fs.iter().any(|t| accepted_by(&p3, cols, t));
                        valid_pred = Some(p3);
                        break;
                    }
                    valid_pred = Some(p3);
                    if unknown || new_false.is_empty() && self.config.per_iteration == 0 {
                        break;
                    }
                    if new_false.is_empty() {
                        break;
                    }
                    sia_obs::add(sia_obs::Counter::CegisFalseSamples, new_false.len() as u64);
                    fs.extend(new_false);
                }
                Validity::Invalid => {
                    // CounterT: tuples satisfying p but rejected by the
                    // learned predicate.
                    let _gen_span = sia_obs::span("generate");
                    let gen_start = Instant::now();
                    let not_learned = enc.encode(&learned_pred)?.not();
                    let mut new_true = Vec::new();
                    for _ in 0..self.config.per_iteration.max(1) {
                        match ts_sampler.sample_with(enc.solver(), &not_learned) {
                            SampleOutcome::Sample(t) => new_true.push(t),
                            _ => break,
                        }
                    }
                    stats.generation_time += gen_start.elapsed();
                    if new_true.is_empty() {
                        bail_if_exhausted!();
                        break;
                    }
                    sia_obs::add(sia_obs::Counter::CegisTrueSamples, new_true.len() as u64);
                    ts.extend(new_true);
                }
                Validity::Unknown => {
                    bail_if_exhausted!();
                    break;
                }
            }
        }
        stats.true_samples = ts.len();
        stats.false_samples = fs.len();
        // The loop conjoins one learned predicate per iteration; strip the
        // superseded ones for readable SQL output.
        let predicate = valid_pred.map(|p| {
            let val_start = Instant::now();
            let _verify_span = sia_obs::span("verify");
            let simplified = crate::verify::remove_redundant_conjuncts(enc, &p);
            stats.validation_time += val_start.elapsed();
            simplified
        });
        Ok(SynthesisResult {
            predicate,
            optimal,
            derived_static: false,
            stats,
        })
    }
}

/// Two-valued evaluation of a predicate at a concrete integer tuple.
fn accepted_by(p: &Pred, cols: &[String], tuple: &[BigInt]) -> bool {
    use sia_expr::{eval_pred, Value};
    let m: std::collections::HashMap<String, Value> = cols
        .iter()
        .zip(tuple)
        .map(|(c, v)| {
            (
                c.clone(),
                Value::Int(v.to_i64().expect("sample value fits i64")),
            )
        })
        .collect();
    eval_pred(p, &m) == Some(true)
}

/// `⋁ᵢ (⋀ⱼ colⱼ = tᵢⱼ)` — the exact predicate for a finite tuple set.
fn exact_disjunction(cols: &[String], tuples: &[Vec<BigInt>]) -> Pred {
    Pred::or_all(tuples.iter().map(|t| {
        Pred::and_all(cols.iter().zip(t).map(|(c, v)| {
            col(c.clone()).cmp(
                CmpOp::Eq,
                Expr::int(v.to_i64().expect("sample value fits i64")),
            )
        }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_expr::{eval_pred, Value};
    use sia_sql::parse_predicate;
    use std::collections::HashMap;

    fn strs(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// Check `p ⇒ learned` by sampling the integer grid.
    fn assert_valid_on_grid(p: &Pred, learned: &Pred, cols3: &[&str], range: i64) {
        for a in -range..=range {
            for b in -range..=range {
                for c in -range..=range {
                    let m: HashMap<String, Value> = cols3
                        .iter()
                        .zip([a, b, c])
                        .map(|(n, v)| (n.to_string(), Value::Int(v)))
                        .collect();
                    if eval_pred(p, &m) == Some(true) {
                        assert_eq!(
                            eval_pred(learned, &m),
                            Some(true),
                            "tuple ({a},{b},{c}) satisfies p but not {learned}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn synthesizes_on_introduction_example() {
        // Q1 from §1: A.val + 10 > B.val + 20 AND B.val + 10 > 20, keep
        // A.val. Satisfiable B.val requires B.val > 10, so A.val > B.val +
        // 10 > 20: optimal reduction is A.val ≥ 22 (integers: A.val+10 >
        // B.val+20 with B.val ≥ 11 → A.val > 21).
        let p = parse_predicate("a + 10 > b + 20 AND b + 10 > 20").unwrap();
        let mut syn = Synthesizer::default();
        let r = syn.synthesize(&p, &strs(&["a"])).unwrap();
        let learned = r.predicate.expect("non-trivial predicate");
        // Validity on a grid.
        for a in -50i64..=50 {
            for b in -50i64..=50 {
                let m: HashMap<String, Value> = [
                    ("a".to_string(), Value::Int(a)),
                    ("b".to_string(), Value::Int(b)),
                ]
                .into_iter()
                .collect();
                if eval_pred(&p, &m) == Some(true) {
                    assert_eq!(eval_pred(&learned, &m), Some(true), "violated at ({a},{b})");
                }
            }
        }
        // Optimality: a = 21 is an unsatisfaction tuple and must be
        // rejected when certified optimal.
        if r.optimal {
            let at21: HashMap<String, Value> =
                [("a".to_string(), Value::Int(21))].into_iter().collect();
            assert_eq!(eval_pred(&learned, &at21), Some(false));
            let at22: HashMap<String, Value> =
                [("a".to_string(), Value::Int(22))].into_iter().collect();
            assert_eq!(eval_pred(&learned, &at22), Some(true));
        }
    }

    #[test]
    fn zone_fragment_is_discharged_statically() {
        // Pure difference-bound predicate: the zone projection is the
        // exact quantifier elimination, so no CEGIS iteration runs and
        // the result is certified optimal up front.
        let p = parse_predicate("a + 10 > b + 20 AND b + 10 > 20").unwrap();
        let mut syn = Synthesizer::default();
        let r = syn.synthesize(&p, &strs(&["a"])).unwrap();
        assert!(r.derived_static, "expected static derivation");
        assert!(r.optimal);
        assert_eq!(r.stats.iterations, 0);
        let learned = r.predicate.expect("non-trivial predicate");
        for (v, expect) in [(21i64, false), (22, true), (1000, true)] {
            let m: HashMap<String, Value> =
                [("a".to_string(), Value::Int(v))].into_iter().collect();
            assert_eq!(eval_pred(&learned, &m), Some(expect), "at a={v}");
        }
    }

    #[test]
    fn partial_derivation_warm_starts_the_loop() {
        // One conjunct is outside the zone fragment, so derivation can
        // only bound the answer (a2 ≤ 18); the bound must survive into
        // the final predicate no matter what the learner adds.
        let p = parse_predicate("a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0").unwrap();
        let mut syn = Synthesizer::default();
        let r = syn.synthesize(&p, &strs(&["a1", "a2"])).unwrap();
        let learned = r.predicate.expect("non-trivial predicate");
        let m: HashMap<String, Value> = [
            ("a1".to_string(), Value::Int(0)),
            ("a2".to_string(), Value::Int(19)),
        ]
        .into_iter()
        .collect();
        assert_eq!(eval_pred(&learned, &m), Some(false), "a2 = 19 is unsat");
        assert_valid_on_grid(&p, &learned, &["a1", "a2", "b1"], 12);
    }

    #[test]
    fn total_zone_region_is_discharged_as_trivial() {
        // ∃b . a < b is TRUE for every a: the projection is exactly TRUE,
        // so the NULL result is certified without any sampling.
        let p = parse_predicate("a < b").unwrap();
        let mut syn = Synthesizer::default();
        let r = syn.synthesize(&p, &strs(&["a"])).unwrap();
        assert!(r.predicate.is_none());
        assert!(r.optimal);
        assert!(r.derived_static);
        assert_eq!(r.stats.iterations, 0);
    }

    #[test]
    fn synthesizes_motivating_example() {
        // §3.2: keep {a1, a2}; true region is a1-a2 ≤ 28 ∧ a2 ≤ 18.
        let p = parse_predicate("a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0").unwrap();
        let mut syn = Synthesizer::default();
        let r = syn.synthesize(&p, &strs(&["a1", "a2"])).unwrap();
        let learned = r.predicate.expect("non-trivial predicate");
        assert!(learned.over_columns(&strs(&["a1", "a2"])));
        assert_valid_on_grid(&p, &learned, &["a1", "a2", "b1"], 12);
        assert!(r.stats.iterations >= 1);
    }

    #[test]
    fn no_useful_predicate_when_region_total() {
        // p: a < b with b unconstrained → every a-value feasible → trivial
        // TRUE is optimal, predicate is None.
        let p = parse_predicate("a < b").unwrap();
        let mut syn = Synthesizer::default();
        let r = syn.synthesize(&p, &strs(&["a"])).unwrap();
        assert!(r.predicate.is_none());
        assert!(r.optimal);
    }

    #[test]
    fn unsat_predicate_yields_false() {
        let p = parse_predicate("a < 0 AND a > 0 AND b = 1").unwrap();
        let mut syn = Synthesizer::default();
        let r = syn.synthesize(&p, &strs(&["b"])).unwrap();
        assert_eq!(r.predicate, Some(Pred::false_()));
        assert!(r.optimal);
    }

    #[test]
    fn finite_true_region_exact() {
        // p: 0 ≤ a ≤ 2 ∧ a = b → keep {a}: finite region {0,1,2}.
        let p = parse_predicate("a >= 0 AND a <= 2 AND a = b").unwrap();
        let mut syn = Synthesizer::default();
        let r = syn.synthesize(&p, &strs(&["a"])).unwrap();
        let learned = r.predicate.expect("exact predicate");
        assert!(r.optimal);
        for (v, expect) in [(0i64, true), (1, true), (2, true), (3, false), (-1, false)] {
            let m: HashMap<String, Value> =
                [("a".to_string(), Value::Int(v))].into_iter().collect();
            assert_eq!(eval_pred(&learned, &m), Some(expect), "at a={v}");
        }
    }

    #[test]
    fn column_not_in_predicate_errors() {
        let p = parse_predicate("a < 5").unwrap();
        let mut syn = Synthesizer::default();
        assert_eq!(
            syn.synthesize(&p, &strs(&["zzz"])).unwrap_err(),
            SynthesisError::ColumnNotInPredicate("zzz".to_string())
        );
        assert_eq!(
            syn.synthesize(&p, &[]).unwrap_err(),
            SynthesisError::NoColumns
        );
    }

    #[test]
    fn cegqi_strategy_agrees() {
        let p = parse_predicate("a - b < 5 AND b < 0").unwrap();
        let mut syn = Synthesizer::new(SiaConfig {
            false_strategy: FalseSampleStrategy::Cegqi,
            ..SiaConfig::default()
        });
        let r = syn.synthesize(&p, &strs(&["a"])).unwrap();
        let learned = r.predicate.expect("non-trivial predicate");
        // valid: any a ≤ 3 must be accepted (a - b < 5 over integers means
        // a ≤ b + 4 with b ≤ -1, so the satisfiable region is a ≤ 3).
        for a in -30i64..=3 {
            let m: HashMap<String, Value> =
                [("a".to_string(), Value::Int(a))].into_iter().collect();
            assert_eq!(eval_pred(&learned, &m), Some(true), "at a={a}");
        }
    }

    #[test]
    fn v1_baseline_runs_single_iteration() {
        let p = parse_predicate("a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0").unwrap();
        let mut syn = Synthesizer::new(SiaConfig::v1());
        let r = syn.synthesize(&p, &strs(&["a1", "a2"])).unwrap();
        assert!(r.stats.iterations <= 1);
        // Whatever it returns must be valid (only verified predicates are
        // kept).
        if let Some(learned) = &r.predicate {
            assert_valid_on_grid(&p, learned, &["a1", "a2", "b1"], 10);
        }
    }

    #[test]
    fn limitation_non_separable_region() {
        // §6.7: a > b && a < b + 50 && b > 0 && b < 150, keep {b}: the
        // satisfiable b-region is 1..149 (finite) — handled exactly. Keep
        // {a} instead: a ∈ 2..199 (finite too). Use wider bounds so the
        // region is effectively learned, not enumerated: scale to ±10⁶.
        let p = parse_predicate("a > b AND a < b + 500000 AND b > 0 AND b < 1500000").unwrap();
        let mut syn = Synthesizer::default();
        let r = syn.synthesize(&p, &strs(&["a"])).unwrap();
        // Must terminate; predicate if any must be valid at spot checks
        // (the satisfiable a-region is exactly 2..=1_999_998).
        if let Some(learned) = &r.predicate {
            for a in [2i64, 100, 400_000, 1_999_998] {
                let m: HashMap<String, Value> =
                    [("a".to_string(), Value::Int(a))].into_iter().collect();
                assert_eq!(eval_pred(learned, &m), Some(true), "at a={a}");
            }
        }
    }

    #[test]
    fn expired_budget_times_out() {
        let p = parse_predicate("a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0").unwrap();
        let mut syn = Synthesizer::new(SiaConfig {
            budget: Budget::with_deadline(Duration::ZERO),
            ..SiaConfig::default()
        });
        assert_eq!(
            syn.synthesize(&p, &strs(&["a1", "a2"])).unwrap_err(),
            SynthesisError::Timeout
        );
    }

    #[test]
    fn cancelled_budget_times_out_mid_run() {
        // Cancel before the run starts via a shared clone: the driver must
        // observe it at its first poll and return Timeout, not wedge.
        let budget = Budget::cancellable();
        budget.cancel();
        let p = parse_predicate("a + 10 > b + 20 AND b + 10 > 20").unwrap();
        let mut syn = Synthesizer::new(SiaConfig {
            budget: budget.clone(),
            ..SiaConfig::default()
        });
        assert_eq!(
            syn.synthesize(&p, &strs(&["a"])).unwrap_err(),
            SynthesisError::Timeout
        );
        // An unlimited budget on the same predicate still succeeds.
        let mut syn = Synthesizer::default();
        assert!(syn.synthesize(&p, &strs(&["a"])).is_ok());
    }

    #[test]
    fn stats_are_populated() {
        // The 3-term atom keeps this outside the zone fragment so the
        // sampling pipeline actually runs.
        let p = parse_predicate("a2 + a2 - b1 < 20 AND b1 < 0").unwrap();
        let mut syn = Synthesizer::default();
        let r = syn.synthesize(&p, &strs(&["a2"])).unwrap();
        assert!(!r.derived_static);
        assert!(r.stats.true_samples > 0);
        assert!(r.stats.generation_time > Duration::ZERO);
    }

    #[test]
    fn phases_cover_the_synthesis_run() {
        sia_obs::reset();
        sia_obs::enable();
        // The doubled `a` keeps the atom outside the zone fragment so the
        // full CEGIS pipeline (and all its phase spans) runs.
        let p = parse_predicate("a + a + 10 > b + 20 AND b + 10 > 20").unwrap();
        let mut syn = Synthesizer::new(SiaConfig {
            max_iterations: 8,
            ..SiaConfig::default()
        });
        let r = syn.synthesize(&p, &strs(&["a"])).unwrap();
        sia_obs::disable();
        assert!(r.predicate.is_some());
        let snap = sia_obs::snapshot();
        // The CEGIS phases are all present and nested under the root.
        for phase in ["synth", "synth/generate", "synth/learn", "synth/verify"] {
            assert!(snap.span(phase).is_some(), "missing span {phase}");
        }
        // Solver sub-phases hang below the driver phases.
        assert!(
            snap.spans
                .iter()
                .any(|(p, _)| p.ends_with("/smt.check") && p.starts_with("synth/")),
            "smt.check not nested under a synth phase: {:?}",
            snap.spans.iter().map(|(p, _)| p).collect::<Vec<_>>()
        );
        // Per-phase attribution covers ≳95% of the run (the loop's own
        // bookkeeping is the only unattributed time).
        let cov = snap.coverage("synth").expect("root span recorded");
        assert!(cov >= 0.90, "phase coverage too low: {cov}");
        // Counters flowed up from every layer.
        let have: Vec<&str> = snap.counters.iter().map(|(c, _)| c.name()).collect();
        for key in [
            "smt.checks",
            "sat.decisions",
            "cegis.rounds",
            "cegis.true_samples",
        ] {
            assert!(have.contains(&key), "missing counter {key}: {have:?}");
        }
    }
}
