//! Encoding SQL predicates as SMT formulas (§5.2).
//!
//! Three concerns from the paper are handled here:
//!
//! * **Type conversion** — `DATE`/`TIMESTAMP` literals were already lowered
//!   to integer day/second offsets by `sia-expr`; columns are declared with
//!   `Int` sort for integral types and `Real` for `DOUBLE`.
//! * **Three-valued logic** — for verification, each nullable column is a
//!   pair of solver variables *(value, isnull)* following the encoding of
//!   Zhou et al. (PVLDB 2019, reference 49 of the paper); a comparison is TRUE only
//!   when every referenced column is non-NULL and the arithmetic atom
//!   holds. Sample generation uses the plain two-valued encoding, because
//!   samples are non-NULL by construction.
//! * **Non-linear arithmetic** — a product/quotient of two columns is
//!   folded into one opaque *composite column* provided its constituents
//!   do not occur elsewhere in the predicate (the paper's side condition);
//!   otherwise encoding fails.

use sia_expr::linear::linearize;
use sia_expr::CmpOp;
use sia_expr::{DataType, LinAtom, NonLinearPolicy, Pred};
use sia_smt::{Formula, LinTerm, Solver, Sort, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// Why a predicate could not be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Non-linear arithmetic outside the composite-column escape hatch.
    NonLinear(String),
    /// A composite column's constituents also occur on their own.
    CompositeOverlap(String),
    /// A column has a type Sia does not support (e.g. TEXT).
    UnsupportedType(String),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::NonLinear(e) => write!(f, "non-linear predicate: {e}"),
            EncodeError::CompositeOverlap(c) => write!(
                f,
                "columns of composite {c:?} also occur elsewhere in the predicate"
            ),
            EncodeError::UnsupportedType(c) => write!(f, "unsupported column type for {c:?}"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Maps predicate columns to solver variables and encodes predicates.
///
/// One `PredEncoder` owns one [`Solver`]; every formula built through it
/// shares the variable space, so results of different encodings can be
/// conjoined freely (which is how `NotOld`, validity, and optimality
/// queries are assembled).
pub struct PredEncoder {
    solver: Solver,
    value_vars: BTreeMap<String, VarId>,
    null_vars: BTreeMap<String, VarId>,
    /// Columns that may be NULL. Empty by default: the paper's benchmark
    /// columns are `NOT NULL`, and non-nullable verification is strictly
    /// stronger for them.
    nullable: BTreeSet<String>,
    col_type: Box<dyn Fn(&str) -> DataType + Send>,
}

impl std::fmt::Debug for PredEncoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredEncoder")
            .field("value_vars", &self.value_vars)
            .field("null_vars", &self.null_vars)
            .field("nullable", &self.nullable)
            .finish()
    }
}

impl Default for PredEncoder {
    fn default() -> Self {
        PredEncoder::new()
    }
}

impl PredEncoder {
    /// Encoder where every column defaults to `INTEGER` and `NOT NULL`.
    pub fn new() -> Self {
        PredEncoder {
            solver: Solver::new(),
            value_vars: BTreeMap::new(),
            null_vars: BTreeMap::new(),
            nullable: BTreeSet::new(),
            col_type: Box::new(|_| DataType::Integer),
        }
    }

    /// Set the column-type oracle (e.g. a catalog lookup).
    pub fn with_types(mut self, f: impl Fn(&str) -> DataType + Send + 'static) -> Self {
        self.col_type = Box::new(f);
        self
    }

    /// Mark columns as nullable (they get *(value, isnull)* pairs and the
    /// three-valued encoding in [`PredEncoder::encode_is_true_3v`]).
    pub fn with_nullable(mut self, cols: impl IntoIterator<Item = String>) -> Self {
        self.nullable.extend(cols);
        self
    }

    /// Access the underlying solver (to run checks on encoded formulas).
    pub fn solver(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// The solver variable carrying a column's value.
    pub fn value_var(&mut self, col: &str) -> VarId {
        if let Some(&v) = self.value_vars.get(col) {
            return v;
        }
        let sort = match (self.col_type)(col) {
            DataType::Double => Sort::Real,
            _ => Sort::Int,
        };
        let v = self.solver.declare(col.to_string(), sort);
        self.value_vars.insert(col.to_string(), v);
        v
    }

    /// The boolean "is NULL" variable of a nullable column.
    pub fn null_var(&mut self, col: &str) -> VarId {
        if let Some(&v) = self.null_vars.get(col) {
            return v;
        }
        let v = self.solver.declare(format!("{col}.isnull"), Sort::Bool);
        self.null_vars.insert(col.to_string(), v);
        v
    }

    /// Columns declared so far, with their value variables.
    pub fn columns(&self) -> impl Iterator<Item = (&str, VarId)> {
        self.value_vars.iter().map(|(c, v)| (c.as_str(), *v))
    }

    /// The columns marked nullable (see [`PredEncoder::with_nullable`]).
    pub fn nullable_cols(&self) -> &BTreeSet<String> {
        &self.nullable
    }

    /// The declared type of a column, as the type oracle reports it.
    pub fn column_type(&self, col: &str) -> DataType {
        (self.col_type)(col)
    }

    fn check_composites(&self, p: &Pred) -> Result<(), EncodeError> {
        // Collect "usage units" per atom side: composite names and plain
        // column names as they appear after linearization.
        let mut plain: BTreeSet<String> = BTreeSet::new();
        let mut composite: BTreeSet<String> = BTreeSet::new();
        fn walk(
            p: &Pred,
            plain: &mut BTreeSet<String>,
            composite: &mut BTreeSet<String>,
        ) -> Result<(), EncodeError> {
            match p {
                Pred::Cmp { lhs, rhs, .. } => {
                    for side in [lhs, rhs] {
                        let lin = linearize(side, NonLinearPolicy::FoldComposite)
                            .map_err(|e| EncodeError::NonLinear(e.0))?;
                        for c in lin.columns() {
                            if c.contains('*') || c.contains('/') {
                                composite.insert(c);
                            } else {
                                plain.insert(c);
                            }
                        }
                    }
                    Ok(())
                }
                Pred::And(ps) | Pred::Or(ps) => {
                    ps.iter().try_for_each(|q| walk(q, plain, composite))
                }
                Pred::Not(q) => walk(q, plain, composite),
                Pred::Lit(_) => Ok(()),
            }
        }
        walk(p, &mut plain, &mut composite)?;
        for c in &composite {
            let (a, b) = c
                .split_once(['*', '/'])
                .expect("composite name contains operator");
            if plain.contains(a) || plain.contains(b) {
                return Err(EncodeError::CompositeOverlap(c.clone()));
            }
        }
        Ok(())
    }

    fn atom_term(&mut self, atom: &LinAtom) -> LinTerm {
        let mut t = LinTerm::constant(atom.expr.constant_term().clone());
        for (col, k) in atom.expr.terms() {
            let v = self.value_var(col);
            t = t.add(&LinTerm::var(v).scale(k));
        }
        t
    }

    fn cmp_formula(&mut self, op: CmpOp, atom: &LinAtom) -> Formula {
        // atom.expr ⋈ 0
        let t = self.atom_term(atom);
        match op {
            CmpOp::Lt => Formula::lt0(t),
            CmpOp::Le => Formula::le0(t),
            CmpOp::Gt => Formula::lt0(t.negated()),
            CmpOp::Ge => Formula::le0(t.negated()),
            CmpOp::Eq => Formula::eq0(t),
            CmpOp::Ne => Formula::ne0(t),
        }
    }

    /// Two-valued encoding: the formula is satisfied exactly by the
    /// non-NULL tuples the predicate accepts. Used for sample generation
    /// and quantifier elimination (§5.3), where tuples are concrete and
    /// NULL-free by construction.
    pub fn encode(&mut self, p: &Pred) -> Result<Formula, EncodeError> {
        self.check_composites(p)?;
        self.encode_unchecked(p)
    }

    fn encode_unchecked(&mut self, p: &Pred) -> Result<Formula, EncodeError> {
        match p {
            Pred::Lit(true) => Ok(Formula::True),
            Pred::Lit(false) => Ok(Formula::False),
            Pred::Cmp { op, lhs, rhs } => {
                let atom = LinAtom::from_cmp(*op, lhs, rhs, NonLinearPolicy::FoldComposite)
                    .map_err(|e| EncodeError::NonLinear(e.0))?;
                Ok(self.cmp_formula(*op, &atom))
            }
            Pred::And(ps) => {
                let mut acc = Formula::True;
                for q in ps {
                    acc = acc.and(self.encode_unchecked(q)?);
                }
                Ok(acc)
            }
            Pred::Or(ps) => {
                let mut acc = Formula::False;
                for q in ps {
                    acc = acc.or(self.encode_unchecked(q)?);
                }
                Ok(acc)
            }
            Pred::Not(q) => Ok(self.encode_unchecked(q)?.not()),
        }
    }

    /// Three-valued encoding of "`p` evaluates to TRUE" (§5.2): a
    /// comparison is TRUE only if every referenced nullable column is
    /// non-NULL, and AND/OR/NOT follow Kleene logic. Used by `Verify`.
    pub fn encode_is_true_3v(&mut self, p: &Pred) -> Result<Formula, EncodeError> {
        self.check_composites(p)?;
        Ok(self.encode_3v(p)?.0)
    }

    /// Returns (is_true, is_false) formula pair.
    fn encode_3v(&mut self, p: &Pred) -> Result<(Formula, Formula), EncodeError> {
        match p {
            Pred::Lit(true) => Ok((Formula::True, Formula::False)),
            Pred::Lit(false) => Ok((Formula::False, Formula::True)),
            Pred::Cmp { op, lhs, rhs } => {
                let atom = LinAtom::from_cmp(*op, lhs, rhs, NonLinearPolicy::FoldComposite)
                    .map_err(|e| EncodeError::NonLinear(e.0))?;
                let pos = self.cmp_formula(*op, &atom);
                let neg = self.cmp_formula(op.negated(), &atom);
                // Which nullable columns does the comparison touch?
                let mut cols = BTreeSet::new();
                lhs.collect_columns(&mut cols);
                rhs.collect_columns(&mut cols);
                let mut nn = Formula::True;
                for c in &cols {
                    if self.nullable.contains(c) {
                        let nv = self.null_var(c);
                        nn = nn.and(Formula::BoolVar(nv).not());
                    }
                }
                Ok((nn.clone().and(pos), nn.and(neg)))
            }
            Pred::And(ps) => {
                let mut t = Formula::True;
                let mut f = Formula::False;
                for q in ps {
                    let (qt, qf) = self.encode_3v(q)?;
                    t = t.and(qt);
                    f = f.or(qf);
                }
                Ok((t, f))
            }
            Pred::Or(ps) => {
                let mut t = Formula::False;
                let mut f = Formula::True;
                for q in ps {
                    let (qt, qf) = self.encode_3v(q)?;
                    t = t.or(qt);
                    f = f.and(qf);
                }
                Ok((t, f))
            }
            Pred::Not(q) => {
                let (qt, qf) = self.encode_3v(q)?;
                Ok((qf, qt))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_expr::{col, lit};
    use sia_num::BigRat;
    use sia_sql::parse_predicate;

    #[test]
    fn simple_encoding_sat() {
        let mut enc = PredEncoder::new();
        let p = parse_predicate("a + 10 > b + 20 AND b > 0").unwrap();
        let f = enc.encode(&p).unwrap();
        let r = enc.solver().check(&f);
        let m = r.model().unwrap();
        let a = m.int(enc.value_var("a"));
        let b = m.int(enc.value_var("b"));
        assert!(&a + sia_num::BigInt::from(10i64) > &b + sia_num::BigInt::from(20i64));
        assert!(b.is_positive());
    }

    #[test]
    fn unsat_predicate() {
        let mut enc = PredEncoder::new();
        let p = parse_predicate("a < 0 AND a > 0").unwrap();
        let f = enc.encode(&p).unwrap();
        assert!(enc.solver().check(&f).is_unsat());
    }

    #[test]
    fn date_predicates_encode_as_days() {
        let mut enc = PredEncoder::new();
        let p =
            parse_predicate("l_shipdate - o_orderdate < 20 AND o_orderdate < DATE '1993-06-01'")
                .unwrap();
        let f = enc.encode(&p).unwrap();
        let r = enc.solver().check(&f);
        assert!(r.is_sat());
        let m = r.model().unwrap();
        let ship = m.int(enc.value_var("l_shipdate"));
        let cutoff = sia_expr::Date::parse("1993-06-20").unwrap().to_days();
        assert!(ship < sia_num::BigInt::from(cutoff));
    }

    #[test]
    fn composite_column_folding() {
        let mut enc = PredEncoder::new();
        // a*b is opaque; predicate satisfiable.
        let p = parse_predicate("a * b > 10 AND c < 5").unwrap();
        let f = enc.encode(&p).unwrap();
        assert!(enc.solver().check(&f).is_sat());
        // the composite got its own variable
        assert!(enc.value_vars.contains_key("a*b"));
    }

    #[test]
    fn composite_overlap_rejected() {
        let mut enc = PredEncoder::new();
        let p = parse_predicate("a * b > 10 AND a < 5").unwrap();
        match enc.encode(&p) {
            Err(EncodeError::CompositeOverlap(c)) => assert_eq!(c, "a*b"),
            other => panic!("expected CompositeOverlap, got {other:?}"),
        }
    }

    #[test]
    fn nonlinear_compound_rejected() {
        let mut enc = PredEncoder::new();
        let p = col("a").add(lit(1)).mul(col("b")).gt(lit(0));
        assert!(matches!(enc.encode(&p), Err(EncodeError::NonLinear(_))));
    }

    #[test]
    fn implication_check_two_valued() {
        // p = (a > 20) implies p1 = (a > 10): p ∧ ¬p1 unsat.
        let mut enc = PredEncoder::new();
        let p = enc.encode(&parse_predicate("a > 20").unwrap()).unwrap();
        let p1 = enc.encode(&parse_predicate("a > 10").unwrap()).unwrap();
        assert!(enc
            .solver()
            .check(&p.clone().and(p1.clone().not()))
            .is_unsat());
        // and the converse is sat (p1 does not imply p)
        assert!(enc.solver().check(&p1.and(p.not())).is_sat());
    }

    #[test]
    fn three_valued_null_blocks_truth() {
        // With a nullable, (a < 5) OR (b < 5) can be TRUE while a is NULL
        // (via b); any candidate over {a} alone cannot be implied.
        let mut enc = PredEncoder::new().with_nullable(vec!["a".to_string()]);
        let p = parse_predicate("a < 5 OR b < 5").unwrap();
        let p_true = enc.encode_is_true_3v(&p).unwrap();
        let cand = parse_predicate("a < 5").unwrap();
        let cand_true = enc.encode_is_true_3v(&cand).unwrap();
        // p TRUE ∧ candidate not TRUE is satisfiable: a NULL, b = 0.
        let q = p_true.and(cand_true.not());
        let r = enc.solver().check(&q);
        assert!(r.is_sat(), "expected violation via NULL");
        let m = r.model().unwrap();
        // The model indeed uses a NULL a or a large a.
        let a_null = m.boolean(enc.null_var("a"));
        let a_val = m.rat(enc.value_var("a"));
        assert!(a_null || a_val >= BigRat::from(5));
    }

    #[test]
    fn three_valued_not_null_columns_behave_classically() {
        let mut enc = PredEncoder::new();
        let p = parse_predicate("a > 20").unwrap();
        let p1 = parse_predicate("a > 10").unwrap();
        let pt = enc.encode_is_true_3v(&p).unwrap();
        let p1t = enc.encode_is_true_3v(&p1).unwrap();
        assert!(enc.solver().check(&pt.and(p1t.not())).is_unsat());
    }

    #[test]
    fn three_valued_negation_is_not_classical() {
        // NOT(a < 5) with nullable a: TRUE requires a non-NULL and a >= 5.
        let mut enc = PredEncoder::new().with_nullable(vec!["a".to_string()]);
        let p = parse_predicate("NOT a < 5").unwrap();
        let pt = enc.encode_is_true_3v(&p).unwrap();
        let r = enc.solver().check(&pt);
        let m = r.model().unwrap();
        assert!(!m.boolean(enc.null_var("a")));
        assert!(m.rat(enc.value_var("a")) >= BigRat::from(5));
    }

    #[test]
    fn division_by_constant() {
        let mut enc = PredEncoder::new();
        let p = parse_predicate("a / 2 > 10").unwrap();
        let f = enc.encode(&p).unwrap();
        let r = enc.solver().check(&f);
        let m = r.model().unwrap();
        assert!(m.int(enc.value_var("a")) > sia_num::BigInt::from(20i64));
    }
}
