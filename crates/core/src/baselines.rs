//! Syntax-driven baselines (§2, §6.3): the transitive-closure
//! transformation and constant propagation.
//!
//! These are the state of the art Sia is compared against in Table 2. Both
//! are *syntactic*: they only fire when conjuncts have a specific shape
//! (unit-coefficient difference constraints for transitive closure;
//! `col = const` equalities for constant propagation), which is exactly why
//! they miss the arithmetic-heavy predicates the benchmark generates.

use sia_expr::{CmpOp, LinAtom, LinExpr, NonLinearPolicy, Pred};
use sia_num::BigRat;
use std::collections::BTreeMap;

/// A bound `u - v ⋖ w` where ⋖ is `<` (strict) or `≤`, with `v = None`
/// meaning the virtual zero node (`u ⋖ w`).
#[derive(Debug, Clone, PartialEq)]
struct DiffBound {
    weight: BigRat,
    strict: bool,
}

impl DiffBound {
    fn tighter(&self, other: &DiffBound) -> bool {
        self.weight < other.weight || (self.weight == other.weight && self.strict && !other.strict)
    }

    fn compose(&self, other: &DiffBound) -> DiffBound {
        DiffBound {
            weight: &self.weight + &other.weight,
            strict: self.strict || other.strict,
        }
    }
}

/// Transitive-closure inference: derive difference/bound predicates over
/// `cols` implied by chains of unit-coefficient comparisons in `p`'s
/// conjuncts (Ioannidis & Ramakrishnan, VLDB 1988 style).
///
/// Returns the conjunction of *newly derived* constraints whose columns
/// all lie in `cols`, or `None` when nothing new is derivable. Only
/// conjuncts of the syntactic shapes `x ⋖ y + c`, `x ⋖ c` participate —
/// matching the baseline's documented weakness.
pub fn transitive_closure(p: &Pred, cols: &[String]) -> Option<Pred> {
    // Node 0 is the virtual zero; nodes 1.. are columns in discovery order.
    let mut nodes: Vec<String> = vec![String::new()];
    let mut index: BTreeMap<String, usize> = BTreeMap::new();
    let node_of = |name: &str, nodes: &mut Vec<String>, index: &mut BTreeMap<String, usize>| {
        *index.entry(name.to_string()).or_insert_with(|| {
            nodes.push(name.to_string());
            nodes.len() - 1
        })
    };
    // edges[(u, v)] = tightest bound on u - v.
    let mut edges: BTreeMap<(usize, usize), DiffBound> = BTreeMap::new();
    let add_edge =
        |u: usize, v: usize, b: DiffBound, edges: &mut BTreeMap<(usize, usize), DiffBound>| {
            match edges.get(&(u, v)) {
                Some(existing) if !b.tighter(existing) => {}
                _ => {
                    edges.insert((u, v), b);
                }
            }
        };
    let mut original: Vec<(usize, usize, DiffBound)> = Vec::new();
    for conj in p.conjuncts() {
        let Pred::Cmp { op, lhs, rhs } = conj else {
            continue;
        };
        let Ok(atom) = LinAtom::from_cmp(*op, lhs, rhs, NonLinearPolicy::Reject) else {
            continue;
        };
        // Accept shapes: ±x ∓ y + c ⋖ 0 or ±x + c ⋖ 0 with unit coeffs.
        let bounds = difference_form(&atom);
        for (pos, neg, weight, strict) in bounds {
            let u = pos
                .map(|c| node_of(&c, &mut nodes, &mut index))
                .unwrap_or(0);
            let v = neg
                .map(|c| node_of(&c, &mut nodes, &mut index))
                .unwrap_or(0);
            if u == v {
                continue;
            }
            let b = DiffBound { weight, strict };
            original.push((u, v, b.clone()));
            add_edge(u, v, b, &mut edges);
        }
    }
    // Floyd–Warshall closure.
    let n = nodes.len();
    for k in 0..n {
        for i in 0..n {
            if i == k {
                continue;
            }
            let Some(ik) = edges.get(&(i, k)).cloned() else {
                continue;
            };
            for j in 0..n {
                if j == i || j == k {
                    continue;
                }
                let Some(kj) = edges.get(&(k, j)).cloned() else {
                    continue;
                };
                let composed = ik.compose(&kj);
                match edges.get(&(i, j)) {
                    Some(existing) if !composed.tighter(existing) => {}
                    _ => {
                        edges.insert((i, j), composed);
                    }
                }
            }
        }
    }
    // Emit derived constraints whose columns are all in `cols`, skipping
    // ones equal to an original conjunct.
    let in_target = |i: usize| i == 0 || cols.contains(&nodes[i]);
    let mut derived: Vec<Pred> = Vec::new();
    for ((u, v), b) in &edges {
        if !in_target(*u) || !in_target(*v) || (*u == 0 && *v == 0) {
            continue;
        }
        if original
            .iter()
            .any(|(ou, ov, ob)| ou == u && ov == v && !b.tighter(ob))
        {
            continue;
        }
        // u - v ⋖ w  as a predicate.
        let mut expr = LinExpr::constant(-b.weight.clone());
        if *u != 0 {
            expr = expr.add(&LinExpr::column(nodes[*u].clone()));
        }
        if *v != 0 {
            expr = expr.sub(&LinExpr::column(nodes[*v].clone()));
        }
        let op = if b.strict { CmpOp::Lt } else { CmpOp::Le };
        derived.push(LinAtom { op, expr }.to_pred());
    }
    if derived.is_empty() {
        None
    } else {
        Some(Pred::and_all(derived))
    }
}

/// Decompose an atom into difference-bound form if it has the syntactic
/// shape the classic transitive-closure transformation handles: a bare
/// column-to-column comparison `x ⋖ y` (no constant offset — `x - y < 20`
/// is an *arithmetic* predicate the rule cannot see through, which is the
/// very weakness §2 illustrates), or a single-column bound `x ⋖ c`.
/// Equalities produce both directions; the `>`-family is normalized
/// first.
fn difference_form(atom: &LinAtom) -> Vec<(Option<String>, Option<String>, BigRat, bool)> {
    let (op, expr) = (atom.op, &atom.expr);
    // Normalize op direction to <, ≤, or = by flipping the expression.
    let (expr, op) = match op {
        CmpOp::Gt => (expr.scale(&-BigRat::one()), CmpOp::Lt),
        CmpOp::Ge => (expr.scale(&-BigRat::one()), CmpOp::Le),
        other => (expr.clone(), other),
    };
    let terms: Vec<(String, BigRat)> = expr
        .terms()
        .map(|(c, k)| (c.to_string(), k.clone()))
        .collect();
    let unit = |k: &BigRat| k.abs() == BigRat::one();
    let (pos, neg) = match terms.len() {
        1 if unit(&terms[0].1) => {
            if terms[0].1.is_positive() {
                (Some(terms[0].0.clone()), None)
            } else {
                (None, Some(terms[0].0.clone()))
            }
        }
        2 if unit(&terms[0].1)
            && unit(&terms[1].1)
            && terms[0].1.signum() != terms[1].1.signum() =>
        {
            if terms[0].1.is_positive() {
                (Some(terms[0].0.clone()), Some(terms[1].0.clone()))
            } else {
                (Some(terms[1].0.clone()), Some(terms[0].0.clone()))
            }
        }
        _ => return Vec::new(),
    };
    let w = -expr.constant_term().clone();
    // Two-column comparisons participate only without a constant offset.
    if pos.is_some() && neg.is_some() && !w.is_zero() {
        return Vec::new();
    }
    match op {
        CmpOp::Lt => vec![(pos, neg, w, true)],
        CmpOp::Le => vec![(pos, neg, w, false)],
        CmpOp::Eq => vec![
            (pos.clone(), neg.clone(), w.clone(), false),
            (neg, pos, -w, false),
        ],
        _ => Vec::new(),
    }
}

/// Constant propagation (§2): substitute `col = const` conjuncts into the
/// remaining conjuncts and fold. Returns the rewritten predicate when at
/// least one substitution fired.
pub fn constant_propagation(p: &Pred) -> Option<Pred> {
    let conjuncts = p.conjuncts();
    let mut constants: BTreeMap<String, i64> = BTreeMap::new();
    for conj in &conjuncts {
        let Pred::Cmp {
            op: CmpOp::Eq,
            lhs,
            rhs,
        } = conj
        else {
            continue;
        };
        let Ok(atom) = LinAtom::from_cmp(CmpOp::Eq, lhs, rhs, NonLinearPolicy::Reject) else {
            continue;
        };
        let terms: Vec<(String, BigRat)> = atom
            .expr
            .terms()
            .map(|(c, k)| (c.to_string(), k.clone()))
            .collect();
        if terms.len() == 1 && terms[0].1.abs() == BigRat::one() {
            // ±col + c = 0 → col = ∓c
            let val = -(atom.expr.constant_term() / &terms[0].1);
            if val.is_integer() {
                if let Some(v) = val.numer().to_i64() {
                    constants.insert(terms[0].0.clone(), v);
                }
            }
        }
    }
    if constants.is_empty() {
        return None;
    }
    // A defining equality (`col = const` itself) is kept verbatim —
    // substituting into it would fold it to TRUE and lose the constraint.
    let is_defining = |conj: &Pred| -> bool {
        let Pred::Cmp {
            op: CmpOp::Eq,
            lhs,
            rhs,
        } = conj
        else {
            return false;
        };
        matches!(
            (lhs, rhs),
            (sia_expr::Expr::Column(_), sia_expr::Expr::Int(_))
                | (sia_expr::Expr::Int(_), sia_expr::Expr::Column(_))
        )
    };
    let mut changed = false;
    let rewritten: Vec<Pred> = conjuncts
        .iter()
        .map(|conj| match conj {
            Pred::Cmp { op, lhs, rhs } if !is_defining(conj) => {
                let nl = substitute_constants(lhs, &constants);
                let nr = substitute_constants(rhs, &constants);
                if &nl != lhs || &nr != rhs {
                    changed = true;
                }
                nl.cmp(*op, nr)
            }
            other => (*other).clone(),
        })
        .collect();
    if !changed {
        return None;
    }
    Some(Pred::and_all(rewritten))
}

fn substitute_constants(e: &sia_expr::Expr, constants: &BTreeMap<String, i64>) -> sia_expr::Expr {
    use sia_expr::Expr;
    match e {
        Expr::Column(c) => match constants.get(c) {
            Some(v) => Expr::Int(*v),
            None => e.clone(),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(substitute_constants(lhs, constants)),
            rhs: Box::new(substitute_constants(rhs, constants)),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_sql::parse_predicate;

    fn strs(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn classic_transitive_closure() {
        // y1 > x && x > y2  →  y1 > y2 (the §2 example).
        let p = parse_predicate("y1 > x AND x > y2").unwrap();
        let out = transitive_closure(&p, &strs(&["y1", "y2"])).unwrap();
        assert_eq!(out.to_string(), "y2 - y1 < 0");
    }

    #[test]
    fn chains_through_constants() {
        // a < b AND b < 3  →  a < 3 (column-to-column link, constant sink).
        let p = parse_predicate("a < b AND b < 3").unwrap();
        let out = transitive_closure(&p, &strs(&["a"])).unwrap();
        assert_eq!(out.to_string(), "a < 3");
        // …but an arithmetic offset breaks the chain (the §2 weakness).
        let q = parse_predicate("a < b + 5 AND b < 3").unwrap();
        assert!(transitive_closure(&q, &strs(&["a"])).is_none());
    }

    #[test]
    fn motivating_example_defeats_tc() {
        // The §3.2 predicate has a 3-variable term; TC derives nothing
        // over {a1, a2} beyond… nothing (no unit difference chain links
        // a1 to a2).
        let p = parse_predicate("a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0").unwrap();
        // Every term carries arithmetic, so the syntax-driven rule derives
        // nothing at all — exactly the paper's point in §2.
        assert!(transitive_closure(&p, &strs(&["a1", "a2"])).is_none());
    }

    #[test]
    fn equality_chains() {
        // a = b AND b <= 7 → a <= 7.
        let p = parse_predicate("a = b AND b <= 7").unwrap();
        let out = transitive_closure(&p, &strs(&["a"])).unwrap();
        assert!(out.to_string().contains("a <= 7"), "{out}");
    }

    #[test]
    fn nothing_derivable() {
        let p = parse_predicate("a + b < 10").unwrap(); // same-sign coeffs
        assert!(transitive_closure(&p, &strs(&["a"])).is_none());
        let q = parse_predicate("2 * a < b").unwrap(); // non-unit
        assert!(transitive_closure(&q, &strs(&["a"])).is_none());
    }

    #[test]
    fn derived_constraints_are_implied() {
        use sia_expr::{eval_pred, Value};
        use std::collections::HashMap;
        let p = parse_predicate("a < b AND b < c AND c <= 4").unwrap();
        let out = transitive_closure(&p, &strs(&["a", "b"])).unwrap();
        for a in -6i64..6 {
            for b in -6i64..6 {
                for cv in -6i64..6 {
                    let m: HashMap<String, Value> = [
                        ("a".to_string(), Value::Int(a)),
                        ("b".to_string(), Value::Int(b)),
                        ("c".to_string(), Value::Int(cv)),
                    ]
                    .into_iter()
                    .collect();
                    if eval_pred(&p, &m) == Some(true) {
                        assert_eq!(eval_pred(&out, &m), Some(true), "at ({a},{b},{cv})");
                    }
                }
            }
        }
    }

    #[test]
    fn constant_propagation_example() {
        // x = 5 && x + y = 20 → 5 + y = 20 (the §2 example).
        let p = parse_predicate("x = 5 AND x + y = 20").unwrap();
        let out = constant_propagation(&p).unwrap();
        let s = out.to_string();
        assert!(s.contains("5 + y = 20") || s.contains("y = 15"), "{s}");
    }

    #[test]
    fn constant_propagation_none_without_equalities() {
        let p = parse_predicate("x < 5 AND y > 3").unwrap();
        assert!(constant_propagation(&p).is_none());
    }
}
