//! Validation of learned predicates and unsatisfaction-region
//! construction (§5.5, §4.2).

use crate::encode::{EncodeError, PredEncoder};
use sia_expr::Pred;
use sia_smt::{eliminate_exists, Formula, QeConfig, QeError, SmtResult, VarId};

/// Outcome of a validity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Validity {
    /// `p ⇒ p₁` holds: the learned predicate preserves query semantics.
    Valid,
    /// A tuple satisfies `p` but not `p₁`.
    Invalid,
    /// Solver budget exhausted.
    Unknown,
}

/// `Verify` (§5.5): decide whether `p` implies `candidate` under
/// three-valued logic, by checking that `is_true(p) ∧ ¬is_true(candidate)`
/// is unsatisfiable.
pub fn verify_implies(
    enc: &mut PredEncoder,
    p: &Pred,
    candidate: &Pred,
) -> Result<Validity, EncodeError> {
    let p_true = enc.encode_is_true_3v(p)?;
    let c_true = enc.encode_is_true_3v(candidate)?;
    let q = p_true.and(c_true.not());
    // Static fast-path: the abstract-interpretation oracle proves most
    // interval-shaped implications without touching the solver. (Encoding
    // happens first regardless, so the checked cross-check and the slow
    // path see identical formulas.)
    if crate::prescreen::enabled()
        && crate::prescreen::analyzer_for(enc, &[p, candidate]).implies(p, candidate)
    {
        crate::prescreen::audit_verdict(
            sia_obs::Counter::AnalyzeImplied,
            1,
            &|| format!("claimed `{p}` implies `{candidate}`, solver found a counterexample"),
            &mut || matches!(enc.solver().check(&q), SmtResult::Sat(_)),
        );
        return Ok(Validity::Valid);
    }
    sia_obs::add(sia_obs::Counter::AnalyzeFallbacks, 1);
    Ok(match enc.solver().check(&q) {
        SmtResult::Unsat => Validity::Valid,
        SmtResult::Sat(_) => Validity::Invalid,
        SmtResult::Unknown => Validity::Unknown,
    })
}

/// The unsatisfaction region over the kept columns:
/// `¬∃ others . p` (Def 4), computed exactly with Cooper elimination.
///
/// `p_formula` must be the two-valued encoding of `p`; `others` are the
/// solver variables to project out. All variables must be integer-sorted
/// (callers with `DOUBLE` columns fall back to the CEGQI sampler).
pub fn unsat_region(
    p_formula: &Formula,
    others: &[VarId],
    qe: &QeConfig,
) -> Result<Formula, QeError> {
    Ok(eliminate_exists(p_formula, others, qe)?.not())
}

/// Drop top-level conjuncts implied by the remaining ones (the CEGIS loop
/// conjoins one learned predicate per iteration, so the raw result is full
/// of superseded bounds). Two-valued reasoning is sound here because the
/// simplified predicate is equivalent to the original on non-NULL tuples
/// and the caller re-verifies under three-valued logic anyway.
pub fn remove_redundant_conjuncts(enc: &mut PredEncoder, p: &Pred) -> Pred {
    let conjuncts: Vec<Pred> = p.conjuncts().into_iter().cloned().collect();
    if conjuncts.len() <= 1 {
        return p.clone();
    }
    let analyzer = crate::prescreen::analyzer_for(enc, &[p]);
    let mut kept = conjuncts;
    let mut i = 0;
    while i < kept.len() {
        if kept.len() == 1 {
            break;
        }
        let candidate = kept[i].clone();
        let rest = Pred::and_all(
            kept.iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| c.clone()),
        );
        // The static oracle settles the common case (superseded interval
        // bounds from successive CEGIS iterations) without a solver call.
        let implied = if crate::prescreen::enabled() && analyzer.implies(&rest, &candidate) {
            crate::prescreen::audit_verdict(
                sia_obs::Counter::AnalyzeImplied,
                1,
                &|| format!("claimed `{rest}` implies `{candidate}`, solver disagrees"),
                &mut || match (enc.encode(&rest), enc.encode(&candidate)) {
                    (Ok(r), Ok(c)) => {
                        matches!(enc.solver().check(&r.and(c.not())), SmtResult::Sat(_))
                    }
                    _ => false,
                },
            );
            true
        } else {
            sia_obs::add(sia_obs::Counter::AnalyzeFallbacks, 1);
            match (enc.encode(&rest), enc.encode(&candidate)) {
                (Ok(r), Ok(c)) => enc.solver().check(&r.and(c.not())).is_unsat(),
                _ => false,
            }
        };
        if implied {
            kept.remove(i);
        } else {
            i += 1;
        }
    }
    Pred::and_all(kept)
}

/// Dual of [`remove_redundant_conjuncts`] for a top-level disjunction:
/// drop disjuncts that imply one of the remaining disjuncts. Used on each
/// learned disjunction-of-planes, where Alg 2 routinely emits a plane
/// subsumed by a later, weaker one.
pub fn remove_redundant_disjuncts(enc: &mut PredEncoder, p: &Pred) -> Pred {
    let Pred::Or(ds) = p else { return p.clone() };
    let analyzer = crate::prescreen::analyzer_for(enc, &[p]);
    let mut kept: Vec<Pred> = ds.clone();
    let mut i = 0;
    while i < kept.len() {
        if kept.len() == 1 {
            break;
        }
        let candidate = kept[i].clone();
        let rest = Pred::or_all(
            kept.iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| c.clone()),
        );
        // candidate ⇒ rest ⟺ candidate ∧ ¬rest unsat.
        let implied = if crate::prescreen::enabled() && analyzer.implies(&candidate, &rest) {
            crate::prescreen::audit_verdict(
                sia_obs::Counter::AnalyzeImplied,
                1,
                &|| format!("claimed `{candidate}` implies `{rest}`, solver disagrees"),
                &mut || match (enc.encode(&candidate), enc.encode(&rest)) {
                    (Ok(c), Ok(r)) => {
                        matches!(enc.solver().check(&c.and(r.not())), SmtResult::Sat(_))
                    }
                    _ => false,
                },
            );
            true
        } else {
            sia_obs::add(sia_obs::Counter::AnalyzeFallbacks, 1);
            match (enc.encode(&candidate), enc.encode(&rest)) {
                (Ok(c), Ok(r)) => enc.solver().check(&c.and(r.not())).is_unsat(),
                _ => false,
            }
        };
        if implied {
            kept.remove(i);
        } else {
            i += 1;
        }
    }
    Pred::or_all(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_sql::parse_predicate;

    #[test]
    fn redundant_disjuncts_removed() {
        let mut enc = PredEncoder::new();
        let p = parse_predicate("a < 5 OR a < 10").unwrap();
        assert_eq!(
            remove_redundant_disjuncts(&mut enc, &p).to_string(),
            "a < 10"
        );
        let q = parse_predicate("a < 5 OR a > 10").unwrap();
        assert_eq!(remove_redundant_disjuncts(&mut enc, &q), q);
        // Non-Or input untouched.
        let single = parse_predicate("a < 5").unwrap();
        assert_eq!(remove_redundant_disjuncts(&mut enc, &single), single);
    }

    #[test]
    fn redundant_conjuncts_removed() {
        let mut enc = PredEncoder::new();
        let p = parse_predicate("a < 5 AND a < 10 AND a < 7 AND b > 0").unwrap();
        let s = remove_redundant_conjuncts(&mut enc, &p);
        assert_eq!(s.to_string(), "a < 5 AND b > 0");
        // A predicate with no redundancy is unchanged.
        let q = parse_predicate("a < 5 AND b > 0").unwrap();
        assert_eq!(remove_redundant_conjuncts(&mut enc, &q), q);
        // Single conjunct untouched.
        let single = parse_predicate("a < 5").unwrap();
        assert_eq!(remove_redundant_conjuncts(&mut enc, &single), single);
    }

    #[test]
    fn valid_weaker_predicate() {
        let mut enc = PredEncoder::new();
        let p = parse_predicate("a > 20 AND b < 5").unwrap();
        let weaker = parse_predicate("a > 10").unwrap();
        assert_eq!(
            verify_implies(&mut enc, &p, &weaker).unwrap(),
            Validity::Valid
        );
    }

    #[test]
    fn invalid_stronger_predicate() {
        let mut enc = PredEncoder::new();
        let p = parse_predicate("a > 20").unwrap();
        let stronger = parse_predicate("a > 30").unwrap();
        assert_eq!(
            verify_implies(&mut enc, &p, &stronger).unwrap(),
            Validity::Invalid
        );
    }

    #[test]
    fn motivating_example_validity() {
        // p from §3.2; the paper's (sign-corrected) reduction a1 - a2 <= 28
        // is valid, while a1 - a2 <= 27 is not optimal-side-invalid… it is
        // still VALID to be weaker; a1 - a2 <= 20 cuts off satisfying
        // tuples and must be Invalid.
        let mut enc = PredEncoder::new();
        let p = parse_predicate("a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0").unwrap();
        let valid = parse_predicate("a1 - a2 <= 28").unwrap();
        assert_eq!(
            verify_implies(&mut enc, &p, &valid).unwrap(),
            Validity::Valid
        );
        let invalid = parse_predicate("a1 - a2 <= 20").unwrap();
        assert_eq!(
            verify_implies(&mut enc, &p, &invalid).unwrap(),
            Validity::Invalid
        );
    }

    #[test]
    fn unsat_region_matches_projection() {
        // p = a2 ≤ 18-ish region from the motivating example.
        let mut enc = PredEncoder::new();
        let p = parse_predicate("a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0").unwrap();
        let pf = enc.encode(&p).unwrap();
        let b1 = enc.value_var("b1");
        let region = unsat_region(&pf, &[b1], &QeConfig::default()).unwrap();
        // The unsatisfaction region must contain (50, 0) and not (-5, 1).
        let a1 = enc.value_var("a1");
        let a2 = enc.value_var("a2");
        let at = |x: i64, y: i64| {
            region
                .subst(a1, &sia_smt::LinTerm::constant(sia_num::BigRat::from(x)))
                .subst(a2, &sia_smt::LinTerm::constant(sia_num::BigRat::from(y)))
        };
        let truth = |f: &Formula| match f {
            Formula::True => true,
            Formula::False => false,
            g => g.eval(&|_| sia_num::BigRat::zero(), &|_| false),
        };
        assert!(truth(&at(50, 0)));
        assert!(!truth(&at(-5, 1)));
        assert!(truth(&at(0, 19))); // a2 = 19 > 18: unsatisfiable
        assert!(!truth(&at(0, 18)));
    }
}
