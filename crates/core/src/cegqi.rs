//! Model-based FALSE-sample generation (CEGQI): the alternative to Cooper
//! quantifier elimination.
//!
//! Instead of computing the unsatisfaction region `¬∃others.p` in closed
//! form, guess a candidate tuple over the kept columns, then ask the
//! solver whether *some* extension satisfies `p`. If yes the candidate is
//! feasible — block it and retry; if no it is an unsatisfaction tuple.
//! Sound and allocation-light, but each verdict costs a solver call and
//! exhaustion can only be certified when the candidate space itself dries
//! up. Used when QE is unavailable (non-integer columns) or over budget,
//! and benchmarked against Cooper in the ablation suite.

use crate::samples::SampleOutcome;
use sia_num::{BigInt, BigRat};
use sia_rand::rngs::StdRng;
use sia_rand::Rng;
use sia_smt::{Formula, LinTerm, SmtResult, Solver, VarId};

/// Configuration for the CEGQI sampler.
#[derive(Debug, Clone)]
pub struct CegqiConfig {
    /// Candidate guesses per requested sample before giving up.
    pub max_tries: usize,
}

impl Default for CegqiConfig {
    fn default() -> Self {
        CegqiConfig { max_tries: 50 }
    }
}

/// Draw one unsatisfaction tuple of `p_formula` over `keep`, subject to
/// `extra` (e.g. the current valid predicate for `CounterF`) and distinct
/// from `seen`. New samples are appended to `seen`.
pub fn false_sample(
    solver: &mut Solver,
    p_formula: &Formula,
    keep: &[VarId],
    extra: &Formula,
    seen: &mut Vec<Vec<BigInt>>,
    rng: &mut StdRng,
    cfg: &CegqiConfig,
) -> SampleOutcome {
    let mut blocked = Formula::True;
    for attempt in 0..cfg.max_tries {
        let base = extra.clone().and(not_old(keep, seen)).and(blocked.clone());
        // Scatter on early attempts for diversity; drop it later so the
        // exhaustion check below stays authoritative.
        let candidate_formula = if attempt < cfg.max_tries / 2 {
            let scattered = base.clone().and(scatter(keep, rng));
            match solver.check(&scattered) {
                SmtResult::Sat(m) => Some(m),
                _ => match solver.check(&base) {
                    SmtResult::Sat(m) => Some(m),
                    SmtResult::Unsat => return SampleOutcome::Exhausted,
                    SmtResult::Unknown => None,
                },
            }
        } else {
            match solver.check(&base) {
                SmtResult::Sat(m) => Some(m),
                SmtResult::Unsat => return SampleOutcome::Exhausted,
                SmtResult::Unknown => None,
            }
        };
        let Some(model) = candidate_formula else {
            return SampleOutcome::Unknown;
        };
        let candidate: Vec<BigInt> = keep.iter().map(|&v| model.int(v)).collect();
        // Is some extension of the candidate feasible for p?
        let mut grounded = p_formula.clone();
        for (&v, val) in keep.iter().zip(&candidate) {
            grounded = grounded.subst(v, &LinTerm::constant(BigRat::from_int(val.clone())));
        }
        match solver.check(&grounded) {
            SmtResult::Unsat => {
                seen.push(candidate.clone());
                return SampleOutcome::Sample(candidate);
            }
            SmtResult::Sat(_) => {
                blocked = blocked.and(differs_from(keep, &candidate));
            }
            SmtResult::Unknown => return SampleOutcome::Unknown,
        }
    }
    SampleOutcome::Unknown
}

fn not_old(keep: &[VarId], seen: &[Vec<BigInt>]) -> Formula {
    let mut acc = Formula::True;
    for tuple in seen {
        acc = acc.and(differs_from(keep, tuple));
    }
    acc
}

fn differs_from(keep: &[VarId], tuple: &[BigInt]) -> Formula {
    let mut differs = Formula::False;
    for (&v, val) in keep.iter().zip(tuple) {
        let t = LinTerm::var(v).sub(&LinTerm::constant(BigRat::from_int(val.clone())));
        differs = differs.or(Formula::ne0(t));
    }
    differs
}

fn scatter(keep: &[VarId], rng: &mut StdRng) -> Formula {
    let mut acc = Formula::True;
    for &v in keep {
        let c: i64 = rng.gen_range(-120..=120);
        acc = acc
            .and(Formula::le0(
                LinTerm::constant(BigRat::from(c - 40)).sub(&LinTerm::var(v)),
            ))
            .and(Formula::le0(
                LinTerm::var(v).sub(&LinTerm::constant(BigRat::from(c + 40))),
            ));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::PredEncoder;
    use sia_rand::SeedableRng;
    use sia_sql::parse_predicate;

    #[test]
    fn finds_unsatisfaction_tuples() {
        // p: a - b < 5 ∧ b < 0  over keep {a}: ∃b ⟺ a can be anything…
        // actually a - b < 5 with b < 0 means a < b + 5 < 5; unsatisfaction
        // tuples over {a} are a ≥ 5… wait: b can be any negative, a < b+5;
        // for a given a, need b > a - 5 and b < 0: exists iff a - 5 < -1
        // i.e. a ≤ 4 (integers). So a ≥ 5 is the unsatisfaction region.
        let mut enc = PredEncoder::new();
        let p = parse_predicate("a - b < 5 AND b < 0").unwrap();
        let pf = enc.encode(&p).unwrap();
        let a = enc.value_var("a");
        let mut seen = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            match false_sample(
                enc.solver(),
                &pf,
                &[a],
                &Formula::True,
                &mut seen,
                &mut rng,
                &CegqiConfig::default(),
            ) {
                SampleOutcome::Sample(t) => {
                    assert!(t[0].to_i64().unwrap() >= 5, "not an unsat tuple: {t:?}");
                }
                other => panic!("expected sample, got {other:?}"),
            }
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn exhausted_when_no_unsat_tuples() {
        // p: a < b with b unconstrained: every a extends (b := a + 1).
        let mut enc = PredEncoder::new();
        let p = parse_predicate("a < b").unwrap();
        let pf = enc.encode(&p).unwrap();
        let a = enc.value_var("a");
        let mut seen = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        // Bound the candidate space via extra so exhaustion is reachable.
        let extra = parse_predicate("a >= 0 AND a <= 3").unwrap();
        let extra_f = enc.encode(&extra).unwrap();
        let out = false_sample(
            enc.solver(),
            &pf,
            &[a],
            &extra_f,
            &mut seen,
            &mut rng,
            &CegqiConfig::default(),
        );
        assert_eq!(out, SampleOutcome::Exhausted);
        assert!(seen.is_empty());
    }

    #[test]
    fn respects_extra_constraint() {
        let mut enc = PredEncoder::new();
        let p = parse_predicate("a - b < 5 AND b < 0").unwrap();
        let pf = enc.encode(&p).unwrap();
        let a = enc.value_var("a");
        let extra = enc.encode(&parse_predicate("a > 100").unwrap()).unwrap();
        let mut seen = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        match false_sample(
            enc.solver(),
            &pf,
            &[a],
            &extra,
            &mut seen,
            &mut rng,
            &CegqiConfig::default(),
        ) {
            SampleOutcome::Sample(t) => assert!(t[0].to_i64().unwrap() > 100),
            other => panic!("expected sample, got {other:?}"),
        }
    }
}
