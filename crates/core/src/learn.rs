//! The `Learn` procedure (Alg 2, §5.4): train linear SVMs until every
//! TRUE sample is classified TRUE, returning the disjunction of the
//! learned half-planes as a predicate.
//!
//! Float hyperplanes are rationalized to integer coefficients and the SVM
//! bias becomes the integer acceptance threshold (`w·x + b > 0` ⇔
//! `w·x ≥ 1 - b` over integers) — the paper's "sum of products … greater
//! than zero" predicate construction, made exact. Keeping the SVM's
//! margin-midpoint bias (rather than clamping to the extreme TRUE sample)
//! is what makes the counter-example loop converge geometrically: each
//! round of counter-examples roughly halves the gap between the learned
//! boundary and the true region boundary (the 50 → 32 → 29 progression of
//! Fig 4).

use sia_expr::{CmpOp, LinAtom, LinExpr, Pred};
use sia_num::{BigInt, BigRat};
use sia_svm::{rationalize, train, Sample, SvmConfig};

/// Result of a `Learn` call.
#[derive(Debug, Clone)]
pub struct LearnOutput {
    /// The learned predicate over the target columns (disjunction of
    /// half-planes).
    pub pred: Pred,
    /// The integer hyperplanes, one per disjunct.
    pub planes: Vec<LearnedPlane>,
    /// True iff every TRUE sample is classified TRUE (Alg 2's guarantee;
    /// false when the model budget ran out on non-separable data, §6.7).
    pub covered_all: bool,
}

/// An integer hyperplane predicate: accepts `x` iff `w·x ≥ threshold`
/// (the rationalized SVM plane with its bias folded into the threshold).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearnedPlane {
    /// Integer weights, aligned with the column order.
    pub weights: Vec<BigInt>,
    /// Acceptance threshold.
    pub threshold: BigInt,
}

impl LearnedPlane {
    /// Exact decision value.
    pub fn decision(&self, x: &[BigInt]) -> BigInt {
        let mut acc = BigInt::zero();
        for (w, v) in self.weights.iter().zip(x) {
            acc = acc + w * v;
        }
        acc
    }

    /// True iff the plane accepts the point.
    pub fn accepts(&self, x: &[BigInt]) -> bool {
        self.decision(x) >= self.threshold
    }

    /// Render as a predicate `Σ wᵢ·colᵢ ≥ threshold`.
    pub fn to_pred(&self, cols: &[String]) -> Pred {
        let expr = LinExpr::from_terms(
            cols.iter()
                .zip(&self.weights)
                .map(|(c, w)| (c.clone(), BigRat::from_int(w.clone()))),
            BigRat::from_int(-self.threshold.clone()),
        );
        LinAtom {
            op: CmpOp::Ge,
            expr,
        }
        .to_pred()
    }

    /// Number of non-zero weights (columns actually used).
    pub fn used_columns(&self) -> usize {
        self.weights.iter().filter(|w| !w.is_zero()).count()
    }
}

/// Learning configuration.
#[derive(Debug, Clone)]
pub struct LearnConfig {
    /// SVM hyper-parameters.
    pub svm: SvmConfig,
    /// Bound on continued-fraction denominators during rationalization.
    pub max_denominator: u64,
    /// Maximum number of disjuncts (Alg 2 loop bound for non-separable
    /// data).
    pub max_models: usize,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            svm: SvmConfig::default(),
            max_denominator: 4,
            max_models: 8,
        }
    }
}

/// Train the disjunction-of-planes classifier of Alg 2.
///
/// Returns `None` when learning is impossible (no TRUE samples, no FALSE
/// samples, or every trained plane degenerates).
pub fn learn(
    cols: &[String],
    ts: &[Vec<BigInt>],
    fs: &[Vec<BigInt>],
    cfg: &LearnConfig,
) -> Option<LearnOutput> {
    if ts.is_empty() || fs.is_empty() {
        return None;
    }
    // Center features on the per-column median — the paper's DATE-origin
    // rebasing (§3.2), driven by the data: day offsets in the thousands
    // would otherwise dwarf the few-unit margins the counter-example loop
    // produces around the true boundary.
    let dim = ts[0].len();
    let offsets: Vec<BigInt> = (0..dim)
        .map(|i| {
            let mut vals: Vec<&BigInt> = ts.iter().chain(fs).map(|t| &t[i]).collect();
            vals.sort();
            vals[vals.len() / 2].clone()
        })
        .collect();
    let to_f64 = |t: &Vec<BigInt>| -> Vec<f64> {
        t.iter()
            .zip(&offsets)
            .map(|(v, o)| (v - o).to_f64())
            .collect()
    };
    let f_samples: Vec<Sample> = fs.iter().map(|t| Sample::new(to_f64(t), false)).collect();
    let mut remaining: Vec<Vec<BigInt>> = ts.to_vec();
    let mut planes: Vec<LearnedPlane> = Vec::new();
    for _ in 0..cfg.max_models {
        if remaining.is_empty() {
            break;
        }
        let mut batch: Vec<Sample> = remaining
            .iter()
            .map(|t| Sample::new(to_f64(t), true))
            .collect();
        batch.extend(f_samples.iter().cloned());
        let float_plane = train(&batch, &cfg.svm);
        let int_plane = rationalize(&float_plane, cfg.max_denominator);
        if int_plane.is_degenerate() {
            break;
        }
        // The plane was learned in centered coordinates:
        // w·(x−o) + b > 0 ⇔ w·x ≥ w·o − b + 1 over integer points.
        let w_dot_o: BigInt = int_plane
            .weights
            .iter()
            .zip(&offsets)
            .fold(BigInt::zero(), |acc, (w, o)| acc + w * o);
        let soft_threshold = w_dot_o - int_plane.bias.clone() + BigInt::one();
        let threshold =
            midgap_threshold(&int_plane.weights, &remaining, fs).unwrap_or(soft_threshold);
        let plane = LearnedPlane {
            weights: int_plane.weights.clone(),
            threshold,
        };
        let before = remaining.len();
        remaining.retain(|t| !plane.accepts(t));
        planes.push(plane);
        if remaining.len() == before {
            // No progress: the plane covered nothing new; further rounds
            // would loop forever on the same data.
            break;
        }
    }
    if planes.is_empty() {
        return None;
    }
    let covered_all = remaining.is_empty();
    let pred = Pred::or_all(planes.iter().map(|p| p.to_pred(cols)));
    Some(LearnOutput {
        pred,
        planes,
        covered_all,
    })
}

/// When the SVM's *direction* separates the current TRUE batch from the
/// FALSE samples, place the threshold at the exact integer midpoint of the
/// projection gap. The soft-margin bias drifts by a few units whenever the
/// gap is tiny relative to the data spread (maximizing the margin would
/// cost ‖w‖² more than nicking a boundary sample), and that drift is what
/// keeps the CEGIS loop from pinching onto the optimal boundary. Returns
/// `None` when the direction does not separate (non-separable round —
/// fall back to the SVM bias).
fn midgap_threshold(weights: &[BigInt], ts: &[Vec<BigInt>], fs: &[Vec<BigInt>]) -> Option<BigInt> {
    let proj = |t: &Vec<BigInt>| -> BigInt {
        weights
            .iter()
            .zip(t)
            .fold(BigInt::zero(), |acc, (w, v)| acc + w * v)
    };
    let min_t = ts.iter().map(&proj).min()?;
    let max_f_below = fs.iter().map(&proj).filter(|p| *p < min_t).max()?;
    // Every FALSE sample must project strictly below every TRUE one for
    // the direction to count as separating.
    if fs.iter().any(|f| proj(f) >= min_t) {
        return None;
    }
    // θ = maxF + ⌈gap/2⌉ ∈ (maxF, minT]: accepts all TRUE, rejects all
    // FALSE, and lands exactly on minT when the gap closes to one.
    let gap = &min_t - &max_f_below;
    let half = (gap + BigInt::one()) / BigInt::from(2i64);
    Some(max_f_below + half)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(vals: &[i64]) -> Vec<BigInt> {
        vals.iter().map(|v| BigInt::from(*v)).collect()
    }

    fn cols(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn separable_single_plane() {
        let ts = vec![pt(&[5]), pt(&[7]), pt(&[10])];
        let fs = vec![pt(&[-5]), pt(&[-1]), pt(&[0])];
        let out = learn(&cols(&["a"]), &ts, &fs, &LearnConfig::default()).unwrap();
        assert!(out.covered_all);
        assert_eq!(out.planes.len(), 1);
        for t in &ts {
            assert!(out.planes[0].accepts(t));
        }
        // The margin midpoint rejects the FALSE cluster too (separable).
        for f in &fs {
            assert!(!out.planes[0].accepts(f), "accepted FALSE {f:?}");
        }
    }

    #[test]
    fn paper_iteration_produces_separator() {
        // §3.2 initial samples.
        let ts = vec![
            pt(&[-5, 1]),
            pt(&[2, -6]),
            pt(&[-27, -44]),
            pt(&[-28, -46]),
            pt(&[-7, -1]),
        ];
        let fs = vec![
            pt(&[-40, -2]),
            pt(&[-56, -2]),
            pt(&[-53, -2]),
            pt(&[-48, -2]),
        ];
        let out = learn(&cols(&["a1", "a2"]), &ts, &fs, &LearnConfig::default()).unwrap();
        assert!(out.covered_all);
        for t in &ts {
            assert!(out.planes.iter().any(|p| p.accepts(t)), "missed {t:?}");
        }
        for f in &fs {
            assert!(
                !out.planes.iter().all(|p| p.accepts(f)) || out.planes.len() > 1,
                "plane too weak"
            );
        }
    }

    #[test]
    fn non_separable_reports_coverage_honestly() {
        // TRUE at both ends, FALSE in the middle.
        let ts = vec![pt(&[-10]), pt(&[-12]), pt(&[10]), pt(&[12])];
        let fs = vec![pt(&[-1]), pt(&[0]), pt(&[1])];
        let out = learn(&cols(&["a"]), &ts, &fs, &LearnConfig::default()).unwrap();
        // Symmetric opposing clusters defeat a hinge-loss linear learner
        // (§6.7): the contract we can assert is *consistency* — whenever
        // covered_all is reported, every TRUE sample really is covered.
        if out.covered_all {
            for t in &ts {
                assert!(out.planes.iter().any(|p| p.accepts(t)));
            }
        }
    }

    #[test]
    fn asymmetric_clusters_use_disjunction() {
        // A large TRUE cluster on the right, a small TRUE cluster far
        // left, dense FALSE in between. The global SVM fit covers the big
        // cluster (sacrificing the small one costs less hinge loss), and
        // Alg 2's retrain-on-misclassified loop adds a second plane for
        // the leftovers.
        let mut ts = Vec::new();
        for x in 60..=100i64 {
            ts.push(pt(&[x]));
        }
        ts.push(pt(&[-80]));
        ts.push(pt(&[-82]));
        // The FALSE block must be dense and the clusters sized so hinge
        // loss prefers a plane through the margin (sacrificing the small
        // far TRUE pair) over the degenerate all-one-class planes.
        let fs: Vec<Vec<BigInt>> = (-50..=50).map(|x| pt(&[x])).collect();
        let out = learn(&cols(&["x"]), &ts, &fs, &LearnConfig::default()).unwrap();
        assert!(out.covered_all, "planes: {:?}", out.planes);
        assert!(out.planes.len() >= 2, "planes: {:?}", out.planes);
        for t in &ts {
            assert!(out.planes.iter().any(|p| p.accepts(t)), "missed {t:?}");
        }
        // The far side of the FALSE block sits outside every half-plane
        // (soft margins may nibble at the boundary side; the outer loop's
        // counter-examples handle that).
        for f in fs.iter().filter(|f| f[0] <= BigInt::zero()) {
            assert!(
                !out.planes.iter().any(|p| p.accepts(f)),
                "accepted FALSE {f:?} with planes {:?}",
                out.planes
            );
        }
    }

    #[test]
    fn empty_inputs_return_none() {
        let ts = vec![pt(&[1])];
        assert!(learn(&cols(&["a"]), &ts, &[], &LearnConfig::default()).is_none());
        assert!(learn(&cols(&["a"]), &[], &ts, &LearnConfig::default()).is_none());
    }

    #[test]
    fn predicate_rendering() {
        let plane = LearnedPlane {
            weights: vec![BigInt::from(1i64), BigInt::from(-1i64)],
            threshold: BigInt::from(-29i64),
        };
        // a1 - a2 ≥ -29, the paper's final predicate (a1 - a2 + 29 > 0
        // over integers).
        let p = plane.to_pred(&cols(&["a1", "a2"]));
        assert_eq!(p.to_string(), "a1 - a2 >= -29");
        assert_eq!(plane.used_columns(), 2);
    }

    #[test]
    fn learned_predicate_is_evaluable() {
        use sia_expr::{eval_pred, Value};
        use std::collections::HashMap;
        let ts = vec![pt(&[5, 3]), pt(&[9, 1])];
        let fs = vec![pt(&[-5, -3]), pt(&[-9, -1])];
        let names = cols(&["x", "y"]);
        let out = learn(&names, &ts, &fs, &LearnConfig::default()).unwrap();
        for (tuple, expect) in ts
            .iter()
            .map(|t| (t, true))
            .chain(fs.iter().map(|f| (f, false)))
        {
            let m: HashMap<String, Value> = names
                .iter()
                .zip(tuple)
                .map(|(c, v)| (c.clone(), Value::Int(v.to_i64().unwrap())))
                .collect();
            assert_eq!(
                eval_pred(&out.pred, &m),
                Some(expect),
                "pred {} at {tuple:?}",
                out.pred
            );
        }
    }
}
