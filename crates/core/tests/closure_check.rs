//! Solver cross-check for the closure engine: every atom `sia-analyze`
//! derives from a conjunction must be *provably* implied by it — checked
//! with the exact `verify_implies` pipeline, not just on sampled tuples.

use sia_analyze::Analyzer;
use sia_core::{verify_implies, PredEncoder, Validity};
use sia_expr::{col, lit, CmpOp, Pred};
use sia_rand::rngs::StdRng;
use sia_rand::{Rng, SeedableRng};

const COLS: [&str; 4] = ["a", "b", "c", "d"];

fn rand_atom(g: &mut StdRng) -> Pred {
    let var = |g: &mut StdRng| col(COLS[g.gen_range(0usize..COLS.len())]);
    let op = match g.gen_range(0u32..5) {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Gt,
        3 => CmpOp::Ge,
        _ => CmpOp::Eq,
    };
    match g.gen_range(0u32..4) {
        0 => var(g).eq_(var(g)),
        1 => var(g).cmp(op, lit(g.gen_range(-8i64..=8))),
        2 => var(g).sub(var(g)).cmp(op, lit(g.gen_range(-8i64..=8))),
        _ => var(g)
            .mul(lit(g.gen_range(2i64..=3)))
            .cmp(op, lit(g.gen_range(-8i64..=8))),
    }
}

#[test]
fn closure_atoms_are_solver_valid() {
    let mut g = StdRng::seed_from_u64(0xC105_C4EC);
    let an = Analyzer::new();
    let mut derived_total = 0usize;
    for _ in 0..60 {
        let n = g.gen_range(2usize..=4);
        let p = Pred::and_all((0..n).map(|_| rand_atom(&mut g)));
        let cl = an.close(&p);
        // An unsatisfiable input implies anything; skip those so every
        // remaining verdict is informative.
        if cl.contradictory(&an) {
            continue;
        }
        for atom in &cl.derived {
            derived_total += 1;
            let mut enc = PredEncoder::new();
            assert_eq!(
                verify_implies(&mut enc, &p, atom).expect("encodable"),
                Validity::Valid,
                "closure derived `{atom}` from `{p}` but the solver refutes it"
            );
        }
        // The per-scope entailed predicate passes the same bar.
        for keep in [&["a"][..], &["a", "b"][..]] {
            let keep: Vec<String> = keep.iter().map(|s| s.to_string()).collect();
            let e = cl.entailed_over(&an, &keep);
            if e.is_true() {
                continue;
            }
            let mut enc = PredEncoder::new();
            assert_eq!(
                verify_implies(&mut enc, &p, &e).expect("encodable"),
                Validity::Valid,
                "entailed_over({keep:?}) of `{p}` gave `{e}` which the solver refutes"
            );
        }
    }
    assert!(
        derived_total > 30,
        "closure derived too little to test ({derived_total})"
    );
}

#[test]
fn snippet_chain_bounds_are_solver_valid() {
    // The paper's motivating chain: equalities carry the bound on id4 to
    // every other key, and each derived bound is solver-checked.
    let an = Analyzer::new();
    let p = col("id1")
        .eq_(col("id2"))
        .and(col("id3").eq_(col("id4")))
        .and(col("id1").eq_(col("id3")))
        .and(col("id4").gt(lit(2020)));
    let cl = an.close(&p);
    for key in ["id1", "id2", "id3"] {
        let e = cl.entailed_over(&an, &[key.to_string()]);
        assert!(!e.is_true(), "nothing entailed for {key}");
        let mut enc = PredEncoder::new();
        assert_eq!(
            verify_implies(&mut enc, &p, &e).expect("encodable"),
            Validity::Valid,
            "derived `{e}` for {key} is not valid"
        );
    }
}
