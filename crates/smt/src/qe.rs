//! Cooper's quantifier-elimination procedure for Presburger arithmetic.
//!
//! Sia generates FALSE training samples (unsatisfaction tuples, Def 4) and
//! decides optimality (Lemma 4) with formulas of the shape
//! `∃ cols′ . φ(cols′) ∧ ∀ others . ¬p(cols′, others)`. The inner universal
//! block is `¬∃ others . p`, so eliminating an existential block from a
//! quantifier-free formula suffices. Over the integers that is Cooper's
//! algorithm (1972): normalize the eliminated variable's coefficient to ±1
//! (at the price of a divisibility constraint), then replace the
//! existential with a finite disjunction over the *lower-bound + offset*
//! witnesses and the "arbitrarily small" limit formula.
//!
//! All variables occurring in the input must be integer-sorted; the
//! procedure is exact (no approximation) but can blow up exponentially in
//! the number of eliminated variables, so a disjunct budget converts
//! pathological inputs into an explicit error instead of an OOM.

use crate::formula::Formula;
use crate::term::{Atom, LinTerm, Rel};
use crate::var::VarId;
use sia_num::{BigInt, BigRat};

/// Budget limits for quantifier elimination.
#[derive(Debug, Clone)]
pub struct QeConfig {
    /// Maximum number of top-level disjuncts generated while eliminating a
    /// single variable (`δ · (|B| + 1)`); exceeding it aborts with
    /// [`QeError::Budget`].
    pub max_disjuncts: usize,
    /// Maximum formula size (AST nodes) of an intermediate result.
    pub max_formula_size: usize,
}

impl Default for QeConfig {
    fn default() -> Self {
        QeConfig {
            max_disjuncts: 4_096,
            max_formula_size: 2_000_000,
        }
    }
}

/// Why elimination failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QeError {
    /// The disjunct or size budget was exceeded.
    Budget(String),
}

impl std::fmt::Display for QeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QeError::Budget(s) => write!(f, "quantifier elimination budget exceeded: {s}"),
        }
    }
}

impl std::error::Error for QeError {}

/// Eliminate `∃ vars . f` over the integers, returning an equivalent
/// quantifier-free formula over the remaining variables.
///
/// Preconditions: `f` is quantifier-free and every arithmetic variable in
/// `f` is integer-valued. Variables are eliminated innermost-first in the
/// order that currently occurs in the fewest atoms (a standard
/// cheapest-first heuristic).
pub fn eliminate_exists(f: &Formula, vars: &[VarId], cfg: &QeConfig) -> Result<Formula, QeError> {
    let _span = sia_obs::span("qe.eliminate");
    let mut g = f.nnf();
    let mut remaining: Vec<VarId> = vars.to_vec();
    while !remaining.is_empty() {
        // Pick the variable with the fewest atom occurrences.
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, v)| (i, count_atom_occurrences(&g, *v)))
            .min_by_key(|(_, n)| *n)
            .unwrap();
        let x = remaining.swap_remove(idx);
        let size_before = if sia_obs::enabled() { g.size() } else { 0 };
        g = eliminate_one(&g, x, cfg)?;
        if sia_obs::enabled() {
            sia_obs::add(sia_obs::Counter::QeEliminations, 1);
            #[allow(clippy::cast_precision_loss)]
            sia_obs::record(
                sia_obs::Hist::QeBlowup,
                g.size() as f64 / size_before.max(1) as f64,
            );
        }
        if g.size() > cfg.max_formula_size {
            return Err(QeError::Budget(format!(
                "intermediate formula has {} nodes",
                g.size()
            )));
        }
    }
    #[cfg(feature = "checked")]
    {
        let audit_cfg = crate::audit::QeAuditConfig::default();
        if let Err(e) = crate::audit::audit_elimination(f, vars, &g, &audit_cfg) {
            panic!("unsound quantifier elimination: {e}");
        }
    }
    Ok(g)
}

fn count_atom_occurrences(f: &Formula, x: VarId) -> usize {
    match f {
        Formula::Atom(a) => usize::from(a.term.mentions(x)),
        Formula::Divides(_, t) | Formula::NotDivides(_, t) => usize::from(t.mentions(x)),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().map(|g| count_atom_occurrences(g, x)).sum(),
        Formula::Not(g) => count_atom_occurrences(g, x),
        _ => 0,
    }
}

/// Eliminate a single existential variable with Cooper's method.
fn eliminate_one(f: &Formula, x: VarId, cfg: &QeConfig) -> Result<Formula, QeError> {
    if !f.mentions(x) {
        return Ok(f.clone());
    }
    // Step 1: put every atom mentioning x into integer-normalized form and
    // compute δ₁ = lcm of |coeff(x)|.
    let normalized = normalize_atoms(f, x);
    let mut delta1 = BigInt::one();
    collect_coeff_lcm(&normalized, x, &mut delta1);
    // Step 2: scale each atom so coeff(x') = ±1 where x' = δ₁·x, and turn
    // non-strict atoms into strict ones (valid over the integers).
    let scaled = scale_to_unit(&normalized, x, &delta1);
    // The coefficient change is compensated by requiring δ₁ | x'.
    let with_div = scaled.and(Formula::divides(delta1.clone(), LinTerm::var(x)));
    // Step 3: collect lower-bound terms (B set) and the divisibility lcm δ.
    let mut lower_bounds: Vec<LinTerm> = Vec::new();
    let mut delta = BigInt::one();
    collect_bounds_and_moduli(&with_div, x, &mut lower_bounds, &mut delta);
    dedup_terms(&mut lower_bounds);
    let delta_u = delta
        .to_i64()
        .filter(|v| *v > 0)
        .ok_or_else(|| QeError::Budget(format!("divisibility lcm too large: {delta}")))?;
    let total = (delta_u as usize).saturating_mul(lower_bounds.len() + 1);
    if total > cfg.max_disjuncts {
        return Err(QeError::Budget(format!(
            "{total} disjuncts (δ = {delta_u}, |B| = {})",
            lower_bounds.len()
        )));
    }
    // Step 4: build  ⋁_{j=1..δ} ( F₋∞[x'→j] ∨ ⋁_{b∈B} F[x'→b+j] ).
    let minus_inf = lower_limit(&with_div, x);
    let mut disjuncts: Vec<Formula> = Vec::new();
    for j in 1..=delta_u {
        let jt = LinTerm::constant(BigRat::from(j));
        let d = minus_inf.subst(x, &jt);
        if d == Formula::True {
            return Ok(Formula::True);
        }
        disjuncts.push(d);
        for b in &lower_bounds {
            let repl = b.add(&jt);
            let d = with_div.subst(x, &repl);
            if d == Formula::True {
                return Ok(Formula::True);
            }
            disjuncts.push(d);
        }
    }
    Ok(Formula::or_all(disjuncts))
}

/// Normalize every atom that mentions `x` to coprime integer coefficients.
fn normalize_atoms(f: &Formula, x: VarId) -> Formula {
    map_atoms(f, &|a: &Atom| {
        if a.term.mentions(x) {
            Formula::Atom(Atom {
                rel: a.rel,
                term: a.term.normalize_integer(),
            })
        } else {
            Formula::Atom(a.clone())
        }
    })
}

fn collect_coeff_lcm(f: &Formula, x: VarId, acc: &mut BigInt) {
    match f {
        Formula::Atom(a) => {
            let c = a.term.coeff(x);
            if !c.is_zero() {
                debug_assert!(c.is_integer(), "atoms must be integer-normalized");
                *acc = acc.lcm(c.numer());
            }
        }
        Formula::Divides(_, t) | Formula::NotDivides(_, t) => {
            let c = t.coeff(x);
            if !c.is_zero() {
                // `scale_to_unit` multiplies this term by δ₁/|c|, which must
                // be a positive integer, so δ₁ needs the RAW numerator of c
                // — not the content-normalized one. Divisibility terms are
                // not rewritten by `normalize_atoms` (that would change the
                // modulus semantics), so `d | 2x + 2y` contributes 2 here
                // even though its normalized coefficient is 1.
                *acc = acc.lcm(c.numer());
            }
        }
        Formula::And(fs) | Formula::Or(fs) => {
            for g in fs {
                collect_coeff_lcm(g, x, acc);
            }
        }
        Formula::Not(g) => collect_coeff_lcm(g, x, acc),
        _ => {}
    }
}

/// Multiply each atom mentioning `x` so the coefficient of `x` becomes ±1
/// under the reading x ↦ x' = δ₁·x, and convert `≤` to `<` (integers).
fn scale_to_unit(f: &Formula, x: VarId, delta1: &BigInt) -> Formula {
    match f {
        Formula::Atom(a) => {
            let c = a.term.coeff(x);
            if c.is_zero() {
                return Formula::Atom(a.clone());
            }
            let a_abs = c.numer().abs();
            let m = BigRat::from_int(delta1 / &a_abs);
            let scaled = a.term.scale(&m);
            // Reinterpret coefficient of x: it is now ±δ₁; under x' = δ₁·x
            // the term Σ…±δ₁·x… becomes …±1·x'….
            let sign = scaled.coeff(x).signum();
            let rest = scaled.sub(&LinTerm::var(x).scale(&scaled.coeff(x)));
            let unit = rest.add(&LinTerm::var(x).scale(&BigRat::from(sign as i64)));
            let term = match a.rel {
                Rel::Lt => unit,
                // Over integers t ≤ 0 ⟺ t < 1 ⟺ t - 1 < 0.
                Rel::Le => unit.add(&LinTerm::constant(-BigRat::one())),
            };
            Formula::lt0(term)
        }
        Formula::Divides(d, t) => {
            let c = t.coeff(x);
            if c.is_zero() {
                return Formula::Divides(d.clone(), t.clone());
            }
            // d | t ⟺ (m·d) | (m·t) for positive integer m = δ₁/|a|.
            let a_abs = abs_numer_over_denom(&c);
            let m = &BigRat::from_int(delta1.clone()) / &a_abs;
            debug_assert!(m.is_positive() && m.is_integer());
            let scaled = t.scale(&m);
            let sign = scaled.coeff(x).signum();
            let rest = scaled.sub(&LinTerm::var(x).scale(&scaled.coeff(x)));
            let unit = rest.add(&LinTerm::var(x).scale(&BigRat::from(sign as i64)));
            Formula::divides(d * m.numer(), unit)
        }
        Formula::NotDivides(d, t) => {
            scale_to_unit(&Formula::Divides(d.clone(), t.clone()), x, delta1).not()
        }
        Formula::And(fs) => Formula::and_all(fs.iter().map(|g| scale_to_unit(g, x, delta1))),
        Formula::Or(fs) => Formula::or_all(fs.iter().map(|g| scale_to_unit(g, x, delta1))),
        Formula::Not(g) => scale_to_unit(g, x, delta1).not(),
        other => other.clone(),
    }
}

fn abs_numer_over_denom(c: &BigRat) -> BigRat {
    BigRat::new(c.numer().abs(), c.denom().clone())
}

/// Collect the B set (terms `b` from atoms `b < x'`) and the lcm of
/// divisibility moduli involving `x'`. Assumes unit coefficients.
fn collect_bounds_and_moduli(f: &Formula, x: VarId, lower: &mut Vec<LinTerm>, delta: &mut BigInt) {
    match f {
        Formula::Atom(a) => {
            let c = a.term.coeff(x);
            if c.is_zero() {
                return;
            }
            debug_assert!(a.rel == Rel::Lt, "atoms must be strict after scaling");
            if c.is_negative() {
                // -x' + r < 0  ⟺  r < x'  : lower bound b = r
                let b = a.term.add(&LinTerm::var(x));
                lower.push(b);
            }
        }
        Formula::Divides(d, t) | Formula::NotDivides(d, t) if t.mentions(x) => {
            *delta = delta.lcm(d);
        }
        Formula::And(fs) | Formula::Or(fs) => {
            for g in fs {
                collect_bounds_and_moduli(g, x, lower, delta);
            }
        }
        Formula::Not(g) => collect_bounds_and_moduli(g, x, lower, delta),
        _ => {}
    }
}

fn dedup_terms(ts: &mut Vec<LinTerm>) {
    let mut seen: Vec<LinTerm> = Vec::new();
    ts.retain(|t| {
        if seen.contains(t) {
            false
        } else {
            seen.push(t.clone());
            true
        }
    });
}

/// The limit formula F₋∞: inequality atoms mentioning `x'` are replaced by
/// their value as x' → -∞ (upper bounds true, lower bounds false).
fn lower_limit(f: &Formula, x: VarId) -> Formula {
    match f {
        Formula::Atom(a) => {
            let c = a.term.coeff(x);
            if c.is_zero() {
                Formula::Atom(a.clone())
            } else if c.is_positive() {
                // x' + r < 0 : true at -∞
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::And(fs) => Formula::and_all(fs.iter().map(|g| lower_limit(g, x))),
        Formula::Or(fs) => Formula::or_all(fs.iter().map(|g| lower_limit(g, x))),
        Formula::Not(g) => lower_limit(g, x).not(),
        other => other.clone(),
    }
}

/// Apply `f` to every atom, leaving other nodes untouched.
fn map_atoms(f: &Formula, m: &impl Fn(&Atom) -> Formula) -> Formula {
    match f {
        Formula::Atom(a) => m(a),
        Formula::And(fs) => Formula::and_all(fs.iter().map(|g| map_atoms(g, m))),
        Formula::Or(fs) => Formula::or_all(fs.iter().map(|g| map_atoms(g, m))),
        Formula::Not(g) => map_atoms(g, m).not(),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SmtResult, Solver};
    use crate::var::Sort;

    fn t1(v: VarId) -> LinTerm {
        LinTerm::var(v)
    }

    fn c(n: i64) -> LinTerm {
        LinTerm::constant(BigRat::from(n))
    }

    /// Reference check: `∃x. f` decided by the solver directly, vs the
    /// QE result with the remaining variables fixed to `vals`.
    fn check_equiv_at(f: &Formula, x: VarId, others: &[(VarId, i64)], solver_vars: usize) {
        let qe = eliminate_exists(f, &[x], &QeConfig::default()).unwrap();
        assert!(!qe.mentions(x), "QE result still mentions {x}: {qe}");
        for &(v, val) in others {
            let _ = (v, val);
        }
        // Substitute the point into both formulas.
        let mut fx = f.clone();
        let mut qx = qe.clone();
        for &(v, val) in others {
            fx = fx.subst(v, &c(val));
            qx = qx.subst(v, &c(val));
        }
        // qx is ground: evaluate.
        let qe_truth = match &qx {
            Formula::True => true,
            Formula::False => false,
            g => {
                // May still contain divisibilities over constants that
                // folded; anything else means x leaked. Evaluate with a
                // dummy assignment (no vars should remain).
                assert!(g.vars().is_empty(), "unexpected free vars in {g}");
                g.eval(&|_| BigRat::zero(), &|_| false)
            }
        };
        // ∃x. fx decided by the solver.
        let mut s = Solver::new();
        for i in 0..solver_vars {
            s.declare(format!("v{i}"), Sort::Int);
        }
        let exists = matches!(s.check(&fx), SmtResult::Sat(_));
        assert_eq!(
            qe_truth, exists,
            "QE disagrees with solver at {others:?} for {f}"
        );
    }

    #[test]
    fn eliminate_simple_bounds() {
        // ∃x. y < x ∧ x < z   ⟺  z - y ≥ 2 (strict integer gap)
        let (x, y, z) = (VarId(0), VarId(1), VarId(2));
        let f = Formula::lt0(t1(y).sub(&t1(x))).and(Formula::lt0(t1(x).sub(&t1(z))));
        for (yv, zv) in [(0i64, 2), (0, 1), (0, 3), (-5, -3), (4, 4), (3, 5)] {
            check_equiv_at(&f, x, &[(y, yv), (z, zv)], 3);
        }
    }

    #[test]
    fn eliminate_with_coefficients() {
        // ∃x. 2x = y  ⟺  2 | y
        let (x, y) = (VarId(0), VarId(1));
        let f = Formula::eq0(t1(x).scale(&BigRat::from(2)).sub(&t1(y)));
        for yv in [-4i64, -3, 0, 1, 2, 7, 8] {
            check_equiv_at(&f, x, &[(y, yv)], 2);
        }
    }

    #[test]
    fn eliminate_mixed_coefficients() {
        // ∃x. 3x ≥ y ∧ 2x ≤ z
        let (x, y, z) = (VarId(0), VarId(1), VarId(2));
        let f = Formula::le0(t1(y).sub(&t1(x).scale(&BigRat::from(3))))
            .and(Formula::le0(t1(x).scale(&BigRat::from(2)).sub(&t1(z))));
        for (yv, zv) in [
            (0i64, 0i64),
            (1, 0),
            (0, 1),
            (5, 3),
            (6, 3),
            (7, 4),
            (-9, -7),
            (-1, -1),
        ] {
            check_equiv_at(&f, x, &[(y, yv), (z, zv)], 3);
        }
    }

    #[test]
    fn eliminate_disjunction() {
        // ∃x. (x < y ∨ x > z) — always true over unbounded integers.
        let (x, y, z) = (VarId(0), VarId(1), VarId(2));
        let f = Formula::lt0(t1(x).sub(&t1(y))).or(Formula::lt0(t1(z).sub(&t1(x))));
        let qe = eliminate_exists(&f, &[x], &QeConfig::default()).unwrap();
        // Must be valid: check at a few points.
        for (yv, zv) in [(0i64, 0i64), (5, -5), (-100, 100)] {
            let g = qe.subst(y, &c(yv)).subst(z, &c(zv));
            assert!(
                matches!(g, Formula::True) || g.eval(&|_| BigRat::zero(), &|_| false),
                "expected true at ({yv},{zv}), got {g}"
            );
        }
    }

    #[test]
    fn eliminate_unsat_core() {
        // ∃x. x < y ∧ y < x is false.
        let (x, y) = (VarId(0), VarId(1));
        let f = Formula::lt0(t1(x).sub(&t1(y))).and(Formula::lt0(t1(y).sub(&t1(x))));
        for yv in [-3i64, 0, 9] {
            check_equiv_at(&f, x, &[(y, yv)], 2);
        }
    }

    #[test]
    fn eliminate_with_divisibility() {
        // ∃x. x ≡ 1 (mod 3) ∧ y ≤ x ∧ x ≤ y + 1
        // ⟺ y ≡ 1 or y+1 ≡ 1 (mod 3).
        let (x, y) = (VarId(0), VarId(1));
        let f = Formula::divides(BigInt::from(3i64), t1(x).sub(&c(1)))
            .and(Formula::le0(t1(y).sub(&t1(x))))
            .and(Formula::le0(t1(x).sub(&t1(y)).sub(&c(1))));
        for yv in 0i64..8 {
            check_equiv_at(&f, x, &[(y, yv)], 2);
        }
    }

    #[test]
    fn eliminate_two_variables() {
        // ∃x₁,x₂. y = x₁ + x₂ ∧ x₁ ≥ 0 ∧ x₂ ≥ 0  ⟺  y ≥ 0
        let (x1, x2, y) = (VarId(0), VarId(1), VarId(2));
        let f = Formula::eq0(t1(x1).add(&t1(x2)).sub(&t1(y)))
            .and(Formula::le0(c(0).sub(&t1(x1))))
            .and(Formula::le0(c(0).sub(&t1(x2))));
        let qe = eliminate_exists(&f, &[x1, x2], &QeConfig::default()).unwrap();
        for yv in [-3i64, -1, 0, 1, 5] {
            let g = qe.subst(y, &c(yv));
            let truth = match &g {
                Formula::True => true,
                Formula::False => false,
                g => g.eval(&|_| BigRat::zero(), &|_| false),
            };
            assert_eq!(truth, yv >= 0, "at y = {yv}: {g}");
        }
    }

    #[test]
    fn motivating_example_projection() {
        // p: a2 - b1 < 20 ∧ a1 - a2 < a2 - b1 + 10 ∧ b1 < 0.
        // ∃b1. p ⟺ a2 ≤ 18 ∧ a1 - a2 ≤ 28 (see sia-expr eval tests).
        let (a1, a2, b1) = (VarId(0), VarId(1), VarId(2));
        let p = Formula::lt0(t1(a2).sub(&t1(b1)).sub(&c(20)))
            .and(Formula::lt0(
                t1(a1).sub(&t1(a2)).sub(&t1(a2).sub(&t1(b1))).sub(&c(10)),
            ))
            .and(Formula::lt0(t1(b1)));
        let qe = eliminate_exists(&p, &[b1], &QeConfig::default()).unwrap();
        let expect = |a1v: i64, a2v: i64| a2v <= 18 && a1v - a2v <= 28;
        for (a1v, a2v) in [
            (0i64, 0i64),
            (-5, 1),
            (2, -6),
            (50, 0),
            (0, 19),
            (0, 18),
            (28, 0),
            (29, 0),
            (-40, -2),
            (47, 18),
            (47, 19),
        ] {
            let g = qe.subst(a1, &c(a1v)).subst(a2, &c(a2v));
            let truth = match &g {
                Formula::True => true,
                Formula::False => false,
                g => g.eval(&|_| BigRat::zero(), &|_| false),
            };
            assert_eq!(truth, expect(a1v, a2v), "at ({a1v},{a2v})");
        }
    }

    #[test]
    fn budget_exceeded() {
        // Huge coefficient forces a large δ; tiny budget trips.
        let (x, y) = (VarId(0), VarId(1));
        let f = Formula::eq0(t1(x).scale(&BigRat::from(97)).sub(&t1(y)));
        let cfg = QeConfig {
            max_disjuncts: 10,
            max_formula_size: 1_000_000,
        };
        assert!(matches!(
            eliminate_exists(&f, &[x], &cfg),
            Err(QeError::Budget(_))
        ));
    }

    #[test]
    fn no_occurrence_is_identity() {
        let (x, y) = (VarId(0), VarId(1));
        let f = Formula::lt0(t1(y));
        assert_eq!(eliminate_exists(&f, &[x], &QeConfig::default()).unwrap(), f);
    }
}
