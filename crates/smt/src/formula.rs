//! Quantifier-free formulas over linear-arithmetic atoms, boolean
//! variables, and integer divisibility constraints.

use crate::term::{Atom, LinTerm};
use crate::var::VarId;
use sia_num::{BigInt, BigRat};
use std::collections::BTreeSet;
use std::fmt;

/// A quantifier-free formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// Linear-arithmetic atom `t ⋈ 0`.
    Atom(Atom),
    /// `modulus | term` (integer divisibility; modulus > 0, term must have
    /// integer coefficients when solved).
    Divides(BigInt, LinTerm),
    /// `modulus ∤ term`.
    NotDivides(BigInt, LinTerm),
    /// A boolean variable.
    BoolVar(VarId),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
}

impl Formula {
    /// `t ≤ 0`
    pub fn le0(t: LinTerm) -> Formula {
        Self::atom_simplified(Atom::le(t))
    }

    /// `t < 0`
    pub fn lt0(t: LinTerm) -> Formula {
        Self::atom_simplified(Atom::lt(t))
    }

    /// `t = 0`, expanded to `t ≤ 0 ∧ -t ≤ 0`.
    pub fn eq0(t: LinTerm) -> Formula {
        Formula::le0(t.clone()).and(Formula::le0(t.negated()))
    }

    /// `t ≠ 0`, expanded to `t < 0 ∨ -t < 0`.
    pub fn ne0(t: LinTerm) -> Formula {
        Formula::lt0(t.clone()).or(Formula::lt0(t.negated()))
    }

    /// Constant-fold an atom with no variables.
    fn atom_simplified(a: Atom) -> Formula {
        if a.term.is_constant() {
            let sat = a.eval(&|_| BigRat::zero());
            if sat {
                Formula::True
            } else {
                Formula::False
            }
        } else {
            Formula::Atom(a)
        }
    }

    /// `modulus | term`, constant-folded when possible.
    pub fn divides(modulus: BigInt, term: LinTerm) -> Formula {
        assert!(
            modulus.is_positive(),
            "divisibility modulus must be positive"
        );
        if modulus.is_one() {
            return Formula::True;
        }
        if term.is_constant() {
            let c = term.constant_term();
            if c.is_integer() && c.numer().mod_floor(&modulus).is_zero() {
                return Formula::True;
            }
            if c.is_integer() {
                return Formula::False;
            }
        }
        Formula::Divides(modulus, term)
    }

    /// Conjunction with absorption and flattening.
    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::True, f) | (f, Formula::True) => f,
            (Formula::False, _) | (_, Formula::False) => Formula::False,
            (Formula::And(mut a), Formula::And(b)) => {
                a.extend(b);
                Formula::And(a)
            }
            (Formula::And(mut a), f) => {
                a.push(f);
                Formula::And(a)
            }
            (f, Formula::And(mut b)) => {
                b.insert(0, f);
                Formula::And(b)
            }
            (a, b) => Formula::And(vec![a, b]),
        }
    }

    /// Disjunction with absorption and flattening.
    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::False, f) | (f, Formula::False) => f,
            (Formula::True, _) | (_, Formula::True) => Formula::True,
            (Formula::Or(mut a), Formula::Or(b)) => {
                a.extend(b);
                Formula::Or(a)
            }
            (Formula::Or(mut a), f) => {
                a.push(f);
                Formula::Or(a)
            }
            (f, Formula::Or(mut b)) => {
                b.insert(0, f);
                Formula::Or(b)
            }
            (a, b) => Formula::Or(vec![a, b]),
        }
    }

    /// Negation (double negation collapses; literals negate in place).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        match self {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(f) => *f,
            Formula::Atom(a) => Formula::Atom(a.negated()),
            Formula::Divides(m, t) => Formula::NotDivides(m, t),
            Formula::NotDivides(m, t) => Formula::Divides(m, t),
            f => Formula::Not(Box::new(f)),
        }
    }

    /// Conjunction of many formulas.
    pub fn and_all(fs: impl IntoIterator<Item = Formula>) -> Formula {
        fs.into_iter().fold(Formula::True, |a, f| a.and(f))
    }

    /// Disjunction of many formulas.
    pub fn or_all(fs: impl IntoIterator<Item = Formula>) -> Formula {
        fs.into_iter().fold(Formula::False, |a, f| a.or(f))
    }

    /// Negation-normal form: `Not` pushed onto atoms (where it is absorbed
    /// by [`Atom::negated`]) and divisibility literals.
    pub fn nnf(&self) -> Formula {
        fn go(f: &Formula, neg: bool) -> Formula {
            match f {
                Formula::True => {
                    if neg {
                        Formula::False
                    } else {
                        Formula::True
                    }
                }
                Formula::False => {
                    if neg {
                        Formula::True
                    } else {
                        Formula::False
                    }
                }
                Formula::Atom(a) => Formula::Atom(if neg { a.negated() } else { a.clone() }),
                Formula::Divides(m, t) => {
                    if neg {
                        Formula::NotDivides(m.clone(), t.clone())
                    } else {
                        Formula::Divides(m.clone(), t.clone())
                    }
                }
                Formula::NotDivides(m, t) => {
                    if neg {
                        Formula::Divides(m.clone(), t.clone())
                    } else {
                        Formula::NotDivides(m.clone(), t.clone())
                    }
                }
                Formula::BoolVar(v) => {
                    if neg {
                        Formula::Not(Box::new(Formula::BoolVar(*v)))
                    } else {
                        Formula::BoolVar(*v)
                    }
                }
                Formula::And(fs) => {
                    let kids: Vec<Formula> = fs.iter().map(|g| go(g, neg)).collect();
                    if neg {
                        Formula::or_all(kids)
                    } else {
                        Formula::and_all(kids)
                    }
                }
                Formula::Or(fs) => {
                    let kids: Vec<Formula> = fs.iter().map(|g| go(g, neg)).collect();
                    if neg {
                        Formula::and_all(kids)
                    } else {
                        Formula::or_all(kids)
                    }
                }
                Formula::Not(g) => go(g, !neg),
            }
        }
        go(self, false)
    }

    /// Collect free variables (arithmetic and boolean) into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<VarId>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => out.extend(a.term.vars()),
            Formula::Divides(_, t) | Formula::NotDivides(_, t) => out.extend(t.vars()),
            Formula::BoolVar(v) => {
                out.insert(*v);
            }
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_vars(out);
                }
            }
            Formula::Not(f) => f.collect_vars(out),
        }
    }

    /// Free variables, sorted.
    pub fn vars(&self) -> Vec<VarId> {
        let mut s = BTreeSet::new();
        self.collect_vars(&mut s);
        s.into_iter().collect()
    }

    /// True iff the formula mentions `v`.
    pub fn mentions(&self, v: VarId) -> bool {
        match self {
            Formula::True | Formula::False => false,
            Formula::Atom(a) => a.term.mentions(v),
            Formula::Divides(_, t) | Formula::NotDivides(_, t) => t.mentions(v),
            Formula::BoolVar(b) => *b == v,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().any(|f| f.mentions(v)),
            Formula::Not(f) => f.mentions(v),
        }
    }

    /// Substitute an arithmetic variable by a linear term everywhere.
    pub fn subst(&self, v: VarId, replacement: &LinTerm) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => Formula::atom_simplified(Atom {
                rel: a.rel,
                term: a.term.subst(v, replacement),
            }),
            Formula::Divides(m, t) => Formula::divides(m.clone(), t.subst(v, replacement)),
            Formula::NotDivides(m, t) => Formula::divides(m.clone(), t.subst(v, replacement)).not(),
            Formula::BoolVar(b) => Formula::BoolVar(*b),
            Formula::And(fs) => Formula::and_all(fs.iter().map(|f| f.subst(v, replacement))),
            Formula::Or(fs) => Formula::or_all(fs.iter().map(|f| f.subst(v, replacement))),
            Formula::Not(f) => f.subst(v, replacement).not(),
        }
    }

    /// Evaluate under a full assignment (`arith` for numeric variables,
    /// `boolv` for boolean variables). Total — used as a model checker in
    /// tests and debug assertions.
    pub fn eval(&self, arith: &impl Fn(VarId) -> BigRat, boolv: &impl Fn(VarId) -> bool) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(a) => a.eval(arith),
            Formula::Divides(m, t) => {
                let v = t.eval(arith);
                v.is_integer() && v.numer().mod_floor(m).is_zero()
            }
            Formula::NotDivides(m, t) => {
                let v = t.eval(arith);
                !(v.is_integer() && v.numer().mod_floor(m).is_zero())
            }
            Formula::BoolVar(v) => boolv(*v),
            Formula::And(fs) => fs.iter().all(|f| f.eval(arith, boolv)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(arith, boolv)),
            Formula::Not(f) => !f.eval(arith, boolv),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(|f| f.size()).sum::<usize>(),
            Formula::Not(f) => 1 + f.size(),
            _ => 1,
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => f.write_str("true"),
            Formula::False => f.write_str("false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Divides(m, t) => write!(f, "{m} | ({t})"),
            Formula::NotDivides(m, t) => write!(f, "{m} !| ({t})"),
            Formula::BoolVar(v) => write!(f, "{v}"),
            Formula::And(fs) => {
                f.write_str("(and")?;
                for g in fs {
                    write!(f, " {g}")?;
                }
                f.write_str(")")
            }
            Formula::Or(fs) => {
                f.write_str("(or")?;
                for g in fs {
                    write!(f, " {g}")?;
                }
                f.write_str(")")
            }
            Formula::Not(g) => write!(f, "(not {g})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: i64) -> BigRat {
        BigRat::from(n)
    }

    fn x() -> LinTerm {
        LinTerm::var(VarId(0))
    }

    #[test]
    fn builders_fold_constants() {
        assert_eq!(Formula::le0(LinTerm::constant(q(-1))), Formula::True);
        assert_eq!(Formula::le0(LinTerm::constant(q(1))), Formula::False);
        assert_eq!(Formula::lt0(LinTerm::constant(q(0))), Formula::False);
        assert_eq!(Formula::le0(LinTerm::constant(q(0))), Formula::True);
    }

    #[test]
    fn divides_folding() {
        assert_eq!(Formula::divides(BigInt::one(), x()), Formula::True);
        assert_eq!(
            Formula::divides(BigInt::from(3i64), LinTerm::constant(q(6))),
            Formula::True
        );
        assert_eq!(
            Formula::divides(BigInt::from(3i64), LinTerm::constant(q(7))),
            Formula::False
        );
    }

    #[test]
    fn and_or_absorption() {
        let a = Formula::le0(x());
        assert_eq!(Formula::True.and(a.clone()), a);
        assert_eq!(Formula::False.and(a.clone()), Formula::False);
        assert_eq!(Formula::False.or(a.clone()), a);
        assert_eq!(Formula::True.or(a.clone()), Formula::True);
    }

    #[test]
    fn negation_absorbs_into_literals() {
        let a = Formula::le0(x());
        match a.clone().not() {
            Formula::Atom(at) => assert_eq!(at.rel, crate::term::Rel::Lt),
            other => panic!("expected negated atom, got {other}"),
        }
        assert_eq!(a.clone().not().not(), a);
        let d = Formula::Divides(BigInt::from(2i64), x());
        assert_eq!(d.clone().not().not(), d);
    }

    #[test]
    fn eq_ne_expansion() {
        let e = Formula::eq0(x());
        match &e {
            Formula::And(fs) => assert_eq!(fs.len(), 2),
            other => panic!("expected And, got {other}"),
        }
        let n = Formula::ne0(x());
        match &n {
            Formula::Or(fs) => assert_eq!(fs.len(), 2),
            other => panic!("expected Or, got {other}"),
        }
    }

    #[test]
    fn nnf() {
        let f = Formula::le0(x()).and(Formula::BoolVar(VarId(9))).not();
        let n = f.nnf();
        assert_eq!(n.to_string(), "(or -1*v0 < 0 (not v9))");
    }

    #[test]
    fn vars_and_mentions() {
        let f = Formula::le0(LinTerm::var(VarId(0)).add(&LinTerm::var(VarId(2))))
            .and(Formula::BoolVar(VarId(5)));
        assert_eq!(f.vars(), vec![VarId(0), VarId(2), VarId(5)]);
        assert!(f.mentions(VarId(2)));
        assert!(!f.mentions(VarId(1)));
    }

    #[test]
    fn substitution_folds() {
        // x <= 0 with x := -3  →  true
        let f = Formula::le0(x());
        assert_eq!(f.subst(VarId(0), &LinTerm::constant(q(-3))), Formula::True);
        assert_eq!(f.subst(VarId(0), &LinTerm::constant(q(3))), Formula::False);
    }

    #[test]
    fn eval_full() {
        // (x - 5 <= 0) and (2 | x)
        let f = Formula::le0(x().add(&LinTerm::constant(q(-5))))
            .and(Formula::Divides(BigInt::from(2i64), x()));
        let at4 = |_: VarId| q(4);
        let at6 = |_: VarId| q(6);
        let at3 = |_: VarId| q(3);
        let tt = |_: VarId| true;
        assert!(f.eval(&at4, &tt));
        assert!(!f.eval(&at6, &tt)); // fails bound
        assert!(!f.eval(&at3, &tt)); // fails divisibility
    }

    #[test]
    fn size() {
        let f = Formula::le0(x()).and(Formula::lt0(x()));
        assert_eq!(f.size(), 3);
        assert_eq!(f.or(Formula::True), Formula::True);
    }
}
