//! Spot-check auditor for quantifier elimination.
//!
//! Cooper's procedure ([`crate::qe`]) claims `ψ(ȳ) ⟺ ∃x̄. φ(ȳ, x̄)`.
//! The auditor samples integer points for the free variables `ȳ` and, for
//! each, grid-searches a bounded window of witness values for the
//! eliminated variables `x̄`:
//!
//! * a witness exists but `ψ` is false — **definite unsoundness** (the
//!   projection is too strong); reported as [`QeAuditError::Unsound`]
//!   with the concrete point and witness;
//! * `ψ` is true but no witness lies in the window — inconclusive (the
//!   witness may be outside the window); counted as `unconfirmed`;
//! * both agree — counted as `witnessed` / `refuted`.
//!
//! Everything is evaluated through [`Formula::eval`], the same 3-valued-
//! free ground evaluator used for model validation, so the auditor shares
//! no code with the elimination procedure it checks. Under the `checked`
//! cargo feature, [`crate::qe::eliminate_exists`] runs this audit on every
//! successful elimination and panics on a definite unsoundness.

use crate::formula::Formula;
use crate::var::VarId;
use sia_num::BigRat;
use sia_rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};

/// Auditor parameters; all sampling is deterministic in `seed`.
#[derive(Debug, Clone)]
pub struct QeAuditConfig {
    /// Free-variable points sampled.
    pub samples: u32,
    /// Free variables are drawn uniformly from `[-free_range, free_range]`.
    pub free_range: i64,
    /// Witness window half-width for each eliminated variable.
    pub witness_range: i64,
    /// Maximum witness grid points per sample; the window shrinks to fit.
    pub max_witness_points: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QeAuditConfig {
    fn default() -> Self {
        QeAuditConfig {
            samples: 12,
            free_range: 8,
            witness_range: 6,
            max_witness_points: 4_096,
            seed: 0xa0d1_7000,
        }
    }
}

/// What a completed audit observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QeAuditReport {
    /// Free-variable points sampled.
    pub samples: u32,
    /// Points where the projection held and a witness was found.
    pub witnessed: u32,
    /// Points where the projection was false and no witness exists in the
    /// window (consistent, though not conclusive in itself).
    pub refuted: u32,
    /// Points where the projection held but no witness lay in the window.
    pub unconfirmed: u32,
}

/// A definite unsoundness: the original formula has a witness at a point
/// the projection rejects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QeAuditError {
    /// Projection too strong: rejects a point with a concrete witness.
    Unsound {
        /// The free-variable assignment.
        point: Vec<(VarId, i64)>,
        /// Witness values for the eliminated variables, in input order.
        witness: Vec<(VarId, i64)>,
    },
}

impl std::fmt::Display for QeAuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QeAuditError::Unsound { point, witness } => {
                write!(
                    f,
                    "projection rejects a witnessed point: point {point:?}, witness {witness:?}"
                )
            }
        }
    }
}

impl std::error::Error for QeAuditError {}

fn collect_bool_vars(f: &Formula, out: &mut BTreeSet<VarId>) {
    match f {
        Formula::BoolVar(v) => {
            out.insert(*v);
        }
        Formula::And(fs) | Formula::Or(fs) => {
            for g in fs {
                collect_bool_vars(g, out);
            }
        }
        Formula::Not(g) => collect_bool_vars(g, out),
        _ => {}
    }
}

fn eval_at(f: &Formula, arith: &HashMap<VarId, i64>, bools: &HashMap<VarId, bool>) -> bool {
    f.eval(
        &|v| BigRat::from(arith.get(&v).copied().unwrap_or(0)),
        &|v| bools.get(&v).copied().unwrap_or(false),
    )
}

/// Largest window half-width `w ≤ want` with `(2w+1)^k ≤ cap`.
fn fit_window(want: i64, k: usize, cap: u64) -> i64 {
    let mut w = want.max(0);
    loop {
        let span = 2 * w as u64 + 1;
        let points = (0..k).try_fold(1u64, |acc, _| acc.checked_mul(span));
        match points {
            Some(p) if p <= cap => return w,
            _ if w == 0 => return 0,
            _ => w -= 1,
        }
    }
}

/// Search the witness window for values of `elim` making `f` true at the
/// fixed `arith`/`bools` point. Odometer enumeration, smallest-norm-last.
fn find_witness(
    f: &Formula,
    elim: &[VarId],
    arith: &mut HashMap<VarId, i64>,
    bools: &HashMap<VarId, bool>,
    w: i64,
) -> Option<Vec<(VarId, i64)>> {
    let span = 2 * w + 1;
    let mut odo = vec![0i64; elim.len()];
    loop {
        for (x, o) in elim.iter().zip(&odo) {
            arith.insert(*x, o - w);
        }
        if eval_at(f, arith, bools) {
            return Some(elim.iter().map(|x| (*x, arith[x])).collect());
        }
        let mut i = 0;
        loop {
            if i == odo.len() {
                for x in elim {
                    arith.remove(x);
                }
                return None;
            }
            odo[i] += 1;
            if odo[i] < span {
                break;
            }
            odo[i] = 0;
            i += 1;
        }
    }
}

/// Audit `projected` as the claimed elimination of `∃ eliminated .
/// original`. Returns counters, or the first definite unsoundness found.
pub fn audit_elimination(
    original: &Formula,
    eliminated: &[VarId],
    projected: &Formula,
    cfg: &QeAuditConfig,
) -> Result<QeAuditReport, QeAuditError> {
    let mut bool_vars = BTreeSet::new();
    collect_bool_vars(original, &mut bool_vars);
    collect_bool_vars(projected, &mut bool_vars);
    let elim_set: BTreeSet<VarId> = eliminated.iter().copied().collect();
    let free: Vec<VarId> = original
        .vars()
        .into_iter()
        .chain(projected.vars())
        .filter(|v| !elim_set.contains(v) && !bool_vars.contains(v))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let w = fit_window(cfg.witness_range, eliminated.len(), cfg.max_witness_points);
    let mut rng = sia_rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut report = QeAuditReport::default();
    for _ in 0..cfg.samples {
        report.samples += 1;
        let mut arith: HashMap<VarId, i64> = free
            .iter()
            .map(|v| (*v, rng.gen_range(-cfg.free_range..=cfg.free_range)))
            .collect();
        let bools: HashMap<VarId, bool> = bool_vars
            .iter()
            .map(|v| (*v, rng.gen_bool_fair()))
            .collect();
        let projected_truth = eval_at(projected, &arith, &bools);
        let point: Vec<(VarId, i64)> = free.iter().map(|v| (*v, arith[v])).collect();
        match find_witness(original, eliminated, &mut arith, &bools, w) {
            Some(witness) => {
                if !projected_truth {
                    return Err(QeAuditError::Unsound { point, witness });
                }
                report.witnessed += 1;
            }
            None => {
                if projected_truth {
                    report.unconfirmed += 1;
                } else {
                    report.refuted += 1;
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::LinTerm;

    fn t1(v: VarId) -> LinTerm {
        LinTerm::var(v)
    }

    fn c(n: i64) -> LinTerm {
        LinTerm::constant(BigRat::from(n))
    }

    fn small_cfg() -> QeAuditConfig {
        QeAuditConfig {
            samples: 24,
            free_range: 4,
            witness_range: 6,
            ..QeAuditConfig::default()
        }
    }

    #[test]
    fn accepts_correct_projection() {
        // ∃x. y ≤ x ∧ x ≤ y + 1 is always true; projection True.
        let (x, y) = (VarId(0), VarId(1));
        let f = Formula::le0(t1(y).sub(&t1(x))).and(Formula::le0(t1(x).sub(&t1(y)).sub(&c(1))));
        let report = audit_elimination(&f, &[x], &Formula::True, &small_cfg()).unwrap();
        assert_eq!(report.witnessed, report.samples);
    }

    #[test]
    fn rejects_too_strong_projection() {
        // ∃x. x = y is always true, but the projection claims y ≥ 100.
        let (x, y) = (VarId(0), VarId(1));
        let f = Formula::eq0(t1(x).sub(&t1(y)));
        let bogus = Formula::le0(c(100).sub(&t1(y)));
        let err = audit_elimination(&f, &[x], &bogus, &small_cfg()).unwrap_err();
        let QeAuditError::Unsound { point, witness } = err;
        // The witness really does satisfy the original at the point.
        assert_eq!(point.len(), 1);
        assert_eq!(witness.len(), 1);
        assert_eq!(point[0].1, witness[0].1, "witness must equal y for x = y");
    }

    #[test]
    fn too_weak_projection_is_unconfirmed_not_unsound() {
        // ∃x. x = 2y ∧ x = 2y + 1 is always false; a projection of True is
        // wrong in the weak direction, which a bounded search cannot prove.
        let (x, y) = (VarId(0), VarId(1));
        let f = Formula::eq0(t1(x).sub(&t1(y).scale(&BigRat::from(2)))).and(Formula::eq0(
            t1(x).sub(&t1(y).scale(&BigRat::from(2))).sub(&c(1)),
        ));
        let report = audit_elimination(&f, &[x], &Formula::True, &small_cfg()).unwrap();
        assert_eq!(report.unconfirmed, report.samples);
    }

    #[test]
    fn window_shrinks_to_budget() {
        assert_eq!(fit_window(6, 1, 4096), 6);
        assert_eq!(fit_window(6, 4, 4096), 3); // 7^4 = 2401 ≤ 4096 < 9^4
        assert_eq!(fit_window(6, 12, 4096), 0); // even 3^12 = 531441 > 4096
        assert_eq!(fit_window(6, 20, 4096), 0);
    }

    #[test]
    fn divisibility_atoms_are_respected() {
        // ∃x. x ≡ 0 (mod 2) ∧ x = y  ⟺  2 | y.
        let (x, y) = (VarId(0), VarId(1));
        let f = Formula::divides(2i64.into(), t1(x)).and(Formula::eq0(t1(x).sub(&t1(y))));
        let proj = Formula::divides(2i64.into(), t1(y));
        let report = audit_elimination(&f, &[x], &proj, &small_cfg()).unwrap();
        assert_eq!(report.unconfirmed, 0);
        assert!(report.witnessed > 0 && report.refuted > 0);
    }
}
