//! Cooperative cancellation and deadlines for the solver's main loops.
//!
//! A [`Budget`] is a cheap, cloneable token carrying an optional wall-clock
//! deadline and a shared cancel flag. Clones share the same underlying
//! state, so a caller can hand a clone to a long-running solve, keep one
//! for itself, and flip the flag from another thread. The solver polls the
//! token at its loop heads — every few hundred CDCL steps, every few dozen
//! simplex pivots, every DPLL(T) round, every branch-and-bound node — and
//! bails out with an `Unknown`/interrupted verdict instead of wedging.
//!
//! The default ([`Budget::unlimited`]) carries no state at all: polling it
//! is a single `Option` discriminant test, so un-budgeted solving pays
//! nothing for the hooks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared deadline + cancel token threaded through solver loops.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    inner: Option<Arc<BudgetInner>>,
}

#[derive(Debug)]
struct BudgetInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl Budget {
    /// A budget that never expires and cannot be cancelled (the default).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A budget that expires `limit` from now (and can also be cancelled).
    pub fn with_deadline(limit: Duration) -> Budget {
        Budget {
            inner: Some(Arc::new(BudgetInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + limit),
            })),
        }
    }

    /// A budget that expires at an absolute instant — used when the clock
    /// started before this call, e.g. a serve deadline set at admission
    /// that must charge queue wait against the request.
    pub fn with_deadline_at(deadline: Instant) -> Budget {
        Budget {
            inner: Some(Arc::new(BudgetInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// A budget with no deadline that can still be cancelled via
    /// [`Budget::cancel`] on any clone.
    pub fn cancellable() -> Budget {
        Budget {
            inner: Some(Arc::new(BudgetInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// True when this is [`Budget::unlimited`] — no deadline, no cancel
    /// flag, polling is free.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// Flip the shared cancel flag: every clone of this budget (and every
    /// solver loop polling one) observes exhaustion from now on.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// True once the budget has been cancelled (deadline not consulted).
    pub fn is_cancelled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.cancelled.load(Ordering::Relaxed))
    }

    /// The poll: true when cancelled or past the deadline. This is the
    /// call sprinkled through the CDCL, simplex, DPLL(T), and
    /// branch-and-bound loops.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        inner
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// Wall time left before the deadline (`None` when there is no
    /// deadline; `Some(ZERO)` once expired or cancelled).
    pub fn remaining(&self) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        if inner.cancelled.load(Ordering::Relaxed) {
            return Some(Duration::ZERO);
        }
        inner
            .deadline
            .map(|deadline| deadline.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.is_exhausted());
        assert!(!b.is_cancelled());
        assert_eq!(b.remaining(), None);
        b.cancel(); // no-op on the unlimited budget
        assert!(!b.is_exhausted());
    }

    #[test]
    fn deadline_expires() {
        let b = Budget::with_deadline(Duration::ZERO);
        assert!(b.is_exhausted());
        assert!(!b.is_cancelled());
        let b = Budget::with_deadline(Duration::from_secs(3600));
        assert!(!b.is_exhausted());
        assert!(b.remaining().expect("has deadline") > Duration::from_secs(3599));
    }

    #[test]
    fn absolute_deadline_charges_elapsed_time() {
        let b = Budget::with_deadline_at(Instant::now());
        assert!(b.is_exhausted());
        let b = Budget::with_deadline_at(Instant::now() + Duration::from_secs(3600));
        assert!(!b.is_exhausted());
        assert!(b.remaining().expect("has deadline") > Duration::from_secs(3599));
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let b = Budget::cancellable();
        let clone = b.clone();
        assert!(!clone.is_exhausted());
        b.cancel();
        assert!(clone.is_exhausted());
        assert!(clone.is_cancelled());
        assert_eq!(clone.remaining(), Some(Duration::ZERO));
    }
}
