//! General simplex for linear real arithmetic, after Dutertre & de Moura,
//! *A Fast Linear-Arithmetic Solver for DPLL(T)* (CAV 2006).
//!
//! Variables carry optional lower/upper bounds (strict bounds encoded with
//! *delta-rationals* `r + k·δ` for an infinitesimal `δ > 0`). Linear
//! combinations are introduced as *slack variables* with a tableau row; the
//! DPLL(T) layer asserts atom literals as bounds on slack variables. `check`
//! restores the invariant that every basic variable is within bounds, or
//! returns a minimal conflict: the set of asserted bound tags that cannot
//! hold together.

use sia_num::BigRat;
use std::cmp::Ordering;
use std::fmt;

/// A delta-rational `r + k·δ` for an infinitesimal positive `δ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QDelta {
    /// Standard (real) part.
    pub r: BigRat,
    /// Coefficient of the infinitesimal.
    pub k: BigRat,
}

impl QDelta {
    /// A pure rational value.
    pub fn rational(r: BigRat) -> Self {
        QDelta {
            r,
            k: BigRat::zero(),
        }
    }

    /// `r + δ` (for strict lower bounds `x > r`).
    pub fn plus_delta(r: BigRat) -> Self {
        QDelta {
            r,
            k: BigRat::one(),
        }
    }

    /// `r - δ` (for strict upper bounds `x < r`).
    pub fn minus_delta(r: BigRat) -> Self {
        QDelta {
            r,
            k: -BigRat::one(),
        }
    }

    /// Zero.
    pub fn zero() -> Self {
        QDelta::rational(BigRat::zero())
    }

    fn add(&self, o: &QDelta) -> QDelta {
        QDelta {
            r: &self.r + &o.r,
            k: &self.k + &o.k,
        }
    }

    fn sub(&self, o: &QDelta) -> QDelta {
        QDelta {
            r: &self.r - &o.r,
            k: &self.k - &o.k,
        }
    }

    fn scale(&self, c: &BigRat) -> QDelta {
        QDelta {
            r: &self.r * c,
            k: &self.k * c,
        }
    }

    /// Materialize with a concrete value for δ.
    pub fn materialize(&self, delta: &BigRat) -> BigRat {
        &self.r + &(&self.k * delta)
    }
}

impl PartialOrd for QDelta {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QDelta {
    fn cmp(&self, other: &Self) -> Ordering {
        self.r.cmp(&other.r).then_with(|| self.k.cmp(&other.k))
    }
}

impl fmt::Display for QDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.k.is_zero() {
            write!(f, "{}", self.r)
        } else {
            write!(
                f,
                "{}{}{}δ",
                self.r,
                if self.k.is_negative() { "-" } else { "+" },
                self.k.abs()
            )
        }
    }
}

/// Tag identifying why a bound was asserted; flows into conflicts.
/// The DPLL(T) layer uses SAT literal codes; [`Expl::INTERNAL`] marks
/// bounds introduced by branch-and-bound (never part of a theory lemma).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Expl(pub u32);

impl Expl {
    /// Marker for solver-internal bounds (integer branching).
    pub const INTERNAL: Expl = Expl(u32::MAX);
}

/// An inconsistent set of asserted bounds.
#[derive(Debug, Clone)]
pub struct Conflict {
    /// Tags of every bound participating in the conflict.
    pub tags: Vec<Expl>,
    /// Farkas multipliers: for each participating bound (by tag), the
    /// strictly positive rational weight under which the bounds' `≤`-form
    /// inequalities sum to a constant contradiction. Meaningless when the
    /// conflict involves an [`Expl::INTERNAL`] bound.
    pub premises: Vec<(Expl, BigRat)>,
}

impl Conflict {
    /// True if the conflict involves a solver-internal (branching) bound,
    /// in which case it cannot be turned into a theory lemma directly.
    pub fn has_internal(&self) -> bool {
        self.tags.contains(&Expl::INTERNAL)
    }
}

#[derive(Debug, Clone)]
struct Bound {
    value: QDelta,
    expl: Expl,
}

#[derive(Debug)]
enum TrailEntry {
    Lower(usize, Option<Bound>),
    Upper(usize, Option<Bound>),
}

/// The simplex solver state.
#[derive(Debug, Default)]
pub struct Simplex {
    /// `rows[i]` is `Some` iff var `i` is basic: `x_i = Σ coeff·x_j` over
    /// nonbasic `x_j`.
    rows: Vec<Option<Vec<(usize, BigRat)>>>,
    beta: Vec<QDelta>,
    lower: Vec<Option<Bound>>,
    upper: Vec<Option<Bound>>,
    trail: Vec<TrailEntry>,
    levels: Vec<usize>,
    /// Pivot count (statistics).
    pub pivots: u64,
    /// Bound assertions that actually narrowed a bound (statistics).
    pub tightenings: u64,
    /// Cooperative cancellation token, polled every few dozen pivots
    /// inside [`Simplex::check`]. Unlimited by default.
    pub budget: crate::Budget,
    /// Set when the last [`Simplex::check`] bailed out on an exhausted
    /// budget; its `Ok(())` then means "undecided", not "feasible".
    interrupted: bool,
}

impl Simplex {
    /// Fresh empty solver.
    pub fn new() -> Self {
        Simplex::default()
    }

    /// Declare a new variable (nonbasic, unbounded, value 0).
    pub fn new_var(&mut self) -> usize {
        let v = self.beta.len();
        self.rows.push(None);
        self.beta.push(QDelta::zero());
        self.lower.push(None);
        self.upper.push(None);
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.beta.len()
    }

    /// Define variable `s` as the linear combination `Σ coeff·var`.
    /// `s` must be fresh (unbounded, never defined) and the combination
    /// must reference only previously-defined variables. Call before any
    /// bounds are asserted on `s`.
    pub fn define(&mut self, s: usize, combo: Vec<(usize, BigRat)>) {
        debug_assert!(self.rows[s].is_none());
        debug_assert!(self.lower[s].is_none() && self.upper[s].is_none());
        // Substitute any basic variables in the combination by their rows
        // so the row is over nonbasic variables only.
        let mut acc: Vec<(usize, BigRat)> = Vec::new();
        let add = |acc: &mut Vec<(usize, BigRat)>, v: usize, c: &BigRat| {
            if let Some(e) = acc.iter_mut().find(|(u, _)| *u == v) {
                e.1 = &e.1 + c;
            } else {
                acc.push((v, c.clone()));
            }
        };
        for (v, c) in combo {
            match &self.rows[v] {
                Some(row) => {
                    let row = row.clone();
                    for (u, cu) in row {
                        add(&mut acc, u, &(&cu * &c));
                    }
                }
                None => add(&mut acc, v, &c),
            }
        }
        acc.retain(|(_, c)| !c.is_zero());
        self.beta[s] = acc.iter().fold(QDelta::zero(), |sum, (v, c)| {
            sum.add(&self.beta[*v].scale(c))
        });
        self.rows[s] = Some(acc);
    }

    /// Begin a backtracking scope for bound assertions.
    pub fn push(&mut self) {
        self.levels.push(self.trail.len());
    }

    /// Undo all bound assertions since the matching [`Simplex::push`].
    pub fn pop(&mut self) {
        let lim = self.levels.pop().expect("pop without push");
        while self.trail.len() > lim {
            match self.trail.pop().unwrap() {
                TrailEntry::Lower(v, old) => self.lower[v] = old,
                TrailEntry::Upper(v, old) => self.upper[v] = old,
            }
        }
    }

    /// Assert `x ≤ bound`.
    pub fn assert_upper(&mut self, x: usize, bound: QDelta, expl: Expl) -> Result<(), Conflict> {
        if let Some(u) = &self.upper[x] {
            if u.value <= bound {
                return Ok(());
            }
        }
        if let Some(l) = &self.lower[x] {
            if bound < l.value {
                // x ≤ b and x ≥ l with b < l: weights 1 and 1.
                return Err(Conflict {
                    tags: vec![expl, l.expl],
                    premises: vec![(expl, BigRat::one()), (l.expl, BigRat::one())],
                });
            }
        }
        self.tightenings += 1;
        self.trail.push(TrailEntry::Upper(x, self.upper[x].clone()));
        self.upper[x] = Some(Bound {
            value: bound.clone(),
            expl,
        });
        if self.rows[x].is_none() && self.beta[x] > bound {
            self.update(x, bound);
        }
        Ok(())
    }

    /// Assert `x ≥ bound`.
    pub fn assert_lower(&mut self, x: usize, bound: QDelta, expl: Expl) -> Result<(), Conflict> {
        if let Some(l) = &self.lower[x] {
            if l.value >= bound {
                return Ok(());
            }
        }
        if let Some(u) = &self.upper[x] {
            if bound > u.value {
                return Err(Conflict {
                    tags: vec![expl, u.expl],
                    premises: vec![(expl, BigRat::one()), (u.expl, BigRat::one())],
                });
            }
        }
        self.tightenings += 1;
        self.trail.push(TrailEntry::Lower(x, self.lower[x].clone()));
        self.lower[x] = Some(Bound {
            value: bound.clone(),
            expl,
        });
        if self.rows[x].is_none() && self.beta[x] < bound {
            self.update(x, bound);
        }
        Ok(())
    }

    /// Set nonbasic `x` to `v`, adjusting every basic variable.
    fn update(&mut self, x: usize, v: QDelta) {
        let diff = v.sub(&self.beta[x]);
        for b in 0..self.rows.len() {
            if let Some(row) = &self.rows[b] {
                if let Some((_, c)) = row.iter().find(|(u, _)| *u == x) {
                    let delta = diff.scale(c);
                    self.beta[b] = self.beta[b].add(&delta);
                }
            }
        }
        self.beta[x] = v;
    }

    /// Pivot basic `xi` with nonbasic `xj` and set `xi`'s value to `v`.
    fn pivot_and_update(&mut self, xi: usize, xj: usize, v: QDelta) {
        self.pivots += 1;
        let row_i = self.rows[xi].take().expect("xi must be basic");
        let a_ij = row_i
            .iter()
            .find(|(u, _)| *u == xj)
            .expect("xj must appear in row of xi")
            .1
            .clone();
        // theta = (v - beta[xi]) / a_ij
        let theta = v.sub(&self.beta[xi]).scale(&a_ij.recip());
        self.beta[xi] = v;
        self.beta[xj] = self.beta[xj].add(&theta);
        // New row for xj: xj = (xi - Σ_{k≠j} a_k x_k) / a_ij
        let inv = a_ij.recip();
        let mut row_j: Vec<(usize, BigRat)> = vec![(xi, inv.clone())];
        for (u, c) in &row_i {
            if *u != xj {
                row_j.push((*u, -(c * &inv)));
            }
        }
        // Update the other basic rows' values and substitute xj.
        for b in 0..self.rows.len() {
            if b == xj {
                continue;
            }
            let Some(row) = self.rows[b].take() else {
                continue;
            };
            let coeff_j = row.iter().find(|(u, _)| *u == xj).map(|(_, c)| c.clone());
            match coeff_j {
                None => {
                    self.rows[b] = Some(row);
                }
                Some(a_kj) => {
                    let delta = theta.scale(&a_kj);
                    self.beta[b] = self.beta[b].add(&delta);
                    // row' = row - a_kj * xj + a_kj * row_j
                    let mut acc: Vec<(usize, BigRat)> =
                        row.into_iter().filter(|(u, _)| *u != xj).collect();
                    for (u, c) in &row_j {
                        let add = c * &a_kj;
                        if let Some(e) = acc.iter_mut().find(|(w, _)| w == u) {
                            e.1 = &e.1 + &add;
                        } else {
                            acc.push((*u, add));
                        }
                    }
                    acc.retain(|(_, c)| !c.is_zero());
                    self.rows[b] = Some(acc);
                }
            }
        }
        self.rows[xj] = Some(row_j);
    }

    /// True when the previous [`Simplex::check`] was cut short by an
    /// exhausted budget, in which case its `Ok(())` carries no feasibility
    /// verdict and the caller must treat the state as undecided.
    pub fn interrupted(&self) -> bool {
        self.interrupted
    }

    /// Restore feasibility. Uses Bland's rule (minimum variable index) so
    /// termination is guaranteed.
    ///
    /// Polls the [`Simplex::budget`] every 64 pivot rounds; on exhaustion
    /// it returns `Ok(())` with [`Simplex::interrupted`] set — callers
    /// consult that flag before trusting feasibility.
    pub fn check(&mut self) -> Result<(), Conflict> {
        self.interrupted = false;
        let mut rounds = 0u64;
        loop {
            rounds += 1;
            // Failpoint + budget poll every 64 pivot rounds, including the
            // very first, so an injected stall (`smt.simplex.pivot=delay`)
            // or an already-expired deadline is caught on entry instead of
            // 63 pivots later.
            if rounds & 0x3F == 1 {
                sia_fault::fire("smt.simplex.pivot");
                if self.budget.is_exhausted() {
                    self.interrupted = true;
                    return Ok(());
                }
            }
            // Find the smallest basic variable violating a bound.
            let mut violated: Option<(usize, bool)> = None; // (var, below_lower)
            for xi in 0..self.rows.len() {
                if self.rows[xi].is_none() {
                    continue;
                }
                if let Some(l) = &self.lower[xi] {
                    if self.beta[xi] < l.value {
                        violated = Some((xi, true));
                        break;
                    }
                }
                if let Some(u) = &self.upper[xi] {
                    if self.beta[xi] > u.value {
                        violated = Some((xi, false));
                        break;
                    }
                }
            }
            let Some((xi, below)) = violated else {
                return Ok(());
            };
            let row = self.rows[xi].as_ref().unwrap().clone();
            let target = if below {
                self.lower[xi].as_ref().unwrap().value.clone()
            } else {
                self.upper[xi].as_ref().unwrap().value.clone()
            };
            // Find a nonbasic variable with slack (Bland: smallest index).
            let mut pivot: Option<usize> = None;
            let mut candidates: Vec<(usize, BigRat)> = row.clone();
            candidates.sort_by_key(|(u, _)| *u);
            for (xj, a) in &candidates {
                let can = if below == a.is_positive() {
                    // Need to increase xj·sign: increasing contribution,
                    // allowed if xj below its upper bound.
                    self.upper[*xj]
                        .as_ref()
                        .is_none_or(|u| self.beta[*xj] < u.value)
                } else {
                    self.lower[*xj]
                        .as_ref()
                        .is_none_or(|l| self.beta[*xj] > l.value)
                };
                if can {
                    pivot = Some(*xj);
                    break;
                }
            }
            match pivot {
                Some(xj) => self.pivot_and_update(xi, xj, target),
                None => {
                    // Conflict: xi's violated bound plus the binding bound
                    // of every nonbasic variable in its row. The Farkas
                    // weights come straight from the row identity
                    // xi = Σ a·xj: weight 1 on the violated bound, |a| on
                    // each blocking bound, so the ≤-form inequalities sum
                    // to a constant contradiction.
                    let mut tags = Vec::with_capacity(row.len() + 1);
                    let mut premises: Vec<(Expl, BigRat)> = Vec::with_capacity(row.len() + 1);
                    let violated_expl = if below {
                        self.lower[xi].as_ref().unwrap().expl
                    } else {
                        self.upper[xi].as_ref().unwrap().expl
                    };
                    tags.push(violated_expl);
                    premises.push((violated_expl, BigRat::one()));
                    for (xj, a) in &row {
                        let bound = if below == a.is_positive() {
                            self.upper[*xj].as_ref()
                        } else {
                            self.lower[*xj].as_ref()
                        };
                        let expl = bound.expect("blocked var must be bounded").expl;
                        tags.push(expl);
                        if let Some(e) = premises.iter_mut().find(|(t, _)| *t == expl) {
                            e.1 = &e.1 + &a.abs();
                        } else {
                            premises.push((expl, a.abs()));
                        }
                    }
                    tags.sort_by_key(|e| e.0);
                    tags.dedup();
                    return Err(Conflict { tags, premises });
                }
            }
        }
    }

    /// Current value of a variable (valid after a successful `check`).
    pub fn value(&self, x: usize) -> &QDelta {
        &self.beta[x]
    }

    /// Choose a concrete positive rational for δ that keeps every bound
    /// satisfied when substituted into the current assignment.
    pub fn concrete_delta(&self) -> BigRat {
        let mut best: Option<BigRat> = None;
        let mut consider = |val: &QDelta, bound: &QDelta, val_above: bool| {
            // Need (val - bound) ≥ 0 (or ≤ 0) after materialization.
            let dr = if val_above {
                &val.r - &bound.r
            } else {
                &bound.r - &val.r
            };
            let dk = if val_above {
                &val.k - &bound.k
            } else {
                &bound.k - &val.k
            };
            // dr + dk·δ ≥ 0 must hold; dr ≥ 0 by QDelta order. If dk < 0,
            // require δ ≤ dr / (-dk).
            if dk.is_negative() && dr.is_positive() {
                let lim = &dr / &(-dk);
                if best.as_ref().is_none_or(|b| lim < *b) {
                    best = Some(lim);
                }
            }
        };
        for x in 0..self.beta.len() {
            if let Some(l) = &self.lower[x] {
                consider(&self.beta[x], &l.value, true);
            }
            if let Some(u) = &self.upper[x] {
                consider(&self.beta[x], &u.value, false);
            }
        }
        let one = BigRat::one();
        match best {
            None => one,
            Some(lim) => {
                let half = &lim / &BigRat::from(2);
                if half < one {
                    half
                } else {
                    one
                }
            }
        }
    }

    /// Current lower bound of a variable.
    pub fn lower_bound(&self, x: usize) -> Option<&QDelta> {
        self.lower[x].as_ref().map(|b| &b.value)
    }

    /// Current upper bound of a variable.
    pub fn upper_bound(&self, x: usize) -> Option<&QDelta> {
        self.upper[x].as_ref().map(|b| &b.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: i64) -> BigRat {
        BigRat::from(n)
    }

    fn qd(n: i64) -> QDelta {
        QDelta::rational(q(n))
    }

    #[test]
    fn qdelta_ordering() {
        assert!(QDelta::minus_delta(q(5)) < qd(5));
        assert!(qd(5) < QDelta::plus_delta(q(5)));
        assert!(QDelta::plus_delta(q(4)) < QDelta::minus_delta(q(5)));
        assert_eq!(qd(3).materialize(&q(1)), q(3));
        assert_eq!(
            QDelta::plus_delta(q(3)).materialize(&BigRat::new(1.into(), 2.into())),
            BigRat::new(7.into(), 2.into())
        );
    }

    #[test]
    fn feasible_box() {
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        s.assert_lower(x, qd(1), Expl(0)).unwrap();
        s.assert_upper(x, qd(5), Expl(1)).unwrap();
        s.assert_lower(y, qd(-2), Expl(2)).unwrap();
        s.assert_upper(y, qd(0), Expl(3)).unwrap();
        assert!(s.check().is_ok());
        assert!(*s.value(x) >= qd(1) && *s.value(x) <= qd(5));
        assert!(*s.value(y) >= qd(-2) && *s.value(y) <= qd(0));
    }

    #[test]
    fn direct_bound_conflict() {
        let mut s = Simplex::new();
        let x = s.new_var();
        s.assert_lower(x, qd(3), Expl(7)).unwrap();
        let e = s.assert_upper(x, qd(2), Expl(9)).unwrap_err();
        assert_eq!(e.tags.len(), 2);
        assert!(e.tags.contains(&Expl(7)) && e.tags.contains(&Expl(9)));
    }

    #[test]
    fn sum_constraint_feasible() {
        // s = x + y, x ≥ 3, y ≥ 4, s ≤ 10
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let sv = s.new_var();
        s.define(sv, vec![(x, q(1)), (y, q(1))]);
        s.assert_lower(x, qd(3), Expl(0)).unwrap();
        s.assert_lower(y, qd(4), Expl(1)).unwrap();
        s.assert_upper(sv, qd(10), Expl(2)).unwrap();
        assert!(s.check().is_ok());
        let vx = s.value(x).clone();
        let vy = s.value(y).clone();
        let vs = s.value(sv).clone();
        assert_eq!(vs, vx.add(&vy));
        assert!(vx >= qd(3) && vy >= qd(4) && vs <= qd(10));
    }

    #[test]
    fn sum_constraint_conflict() {
        // s = x + y, x ≥ 6, y ≥ 5, s ≤ 10: conflict must cite all three.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let sv = s.new_var();
        s.define(sv, vec![(x, q(1)), (y, q(1))]);
        s.assert_lower(x, qd(6), Expl(0)).unwrap();
        s.assert_lower(y, qd(5), Expl(1)).unwrap();
        s.assert_upper(sv, qd(10), Expl(2)).unwrap();
        let e = s.check().unwrap_err();
        let mut tags: Vec<u32> = e.tags.iter().map(|t| t.0).collect();
        tags.sort();
        assert_eq!(tags, vec![0, 1, 2]);
    }

    #[test]
    fn strict_bounds_via_delta() {
        // x + y < 2 and x > 1 and y > 1 is infeasible over the reals.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let sv = s.new_var();
        s.define(sv, vec![(x, q(1)), (y, q(1))]);
        s.assert_lower(x, QDelta::plus_delta(q(1)), Expl(0))
            .unwrap();
        s.assert_lower(y, QDelta::plus_delta(q(1)), Expl(1))
            .unwrap();
        s.assert_upper(sv, QDelta::minus_delta(q(2)), Expl(2))
            .unwrap();
        assert!(s.check().is_err());
    }

    #[test]
    fn strict_bounds_feasible_and_materialized() {
        // x > 0 and x < 1: feasible; materialized value strictly inside.
        let mut s = Simplex::new();
        let x = s.new_var();
        s.assert_lower(x, QDelta::plus_delta(q(0)), Expl(0))
            .unwrap();
        s.assert_upper(x, QDelta::minus_delta(q(1)), Expl(1))
            .unwrap();
        assert!(s.check().is_ok());
        let d = s.concrete_delta();
        let v = s.value(x).materialize(&d);
        assert!(v > q(0) && v < q(1), "got {v}");
    }

    #[test]
    fn push_pop_restores_bounds() {
        let mut s = Simplex::new();
        let x = s.new_var();
        s.assert_lower(x, qd(0), Expl(0)).unwrap();
        s.push();
        s.assert_lower(x, qd(10), Expl(1)).unwrap();
        assert_eq!(s.lower_bound(x), Some(&qd(10)));
        s.pop();
        assert_eq!(s.lower_bound(x), Some(&qd(0)));
        // And a conflict introduced inside a scope disappears after pop.
        s.push();
        s.assert_upper(x, qd(5), Expl(2)).unwrap();
        assert!(s.check().is_ok());
        s.pop();
        assert_eq!(s.upper_bound(x), None);
    }

    #[test]
    fn chained_definitions() {
        // u = x - y; w = u + y (must substitute u's row) == x.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let u = s.new_var();
        s.define(u, vec![(x, q(1)), (y, q(-1))]);
        let w = s.new_var();
        s.define(w, vec![(u, q(1)), (y, q(1))]);
        s.assert_lower(x, qd(7), Expl(0)).unwrap();
        s.assert_upper(w, qd(3), Expl(1)).unwrap();
        // w == x, so x ≥ 7 and w ≤ 3 conflict.
        let e = s.check().unwrap_err();
        assert!(e.tags.len() >= 2);
    }

    #[test]
    fn many_pivots_feasible() {
        // A chain s_i = x_i + x_{i+1} with alternating bounds; feasible.
        let mut s = Simplex::new();
        let xs: Vec<usize> = (0..10).map(|_| s.new_var()).collect();
        let mut tag = 0u32;
        for i in 0..9 {
            let sv = s.new_var();
            s.define(sv, vec![(xs[i], q(1)), (xs[i + 1], q(1))]);
            s.assert_lower(sv, qd(1), Expl(tag)).unwrap();
            tag += 1;
            s.assert_upper(sv, qd(3), Expl(tag)).unwrap();
            tag += 1;
        }
        assert!(s.check().is_ok());
        for i in 0..9 {
            let sum = s.value(xs[i]).add(s.value(xs[i + 1]));
            assert!(sum >= qd(1) && sum <= qd(3));
        }
    }
}
