//! Solver variables: identifiers, sorts, and the variable table.

use std::fmt;

/// A solver variable identifier. Indexes into the owning
/// [`VarTable`]; cheap to copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The sort (type) of a solver variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sort {
    /// Mathematical integer.
    Int,
    /// Mathematical real (rational models).
    Real,
    /// Boolean.
    Bool,
}

/// Variable metadata.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Human-readable name (for diagnostics and model printing).
    pub name: String,
    /// Sort.
    pub sort: Sort,
}

/// Arena of declared variables.
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    vars: Vec<VarInfo>,
}

impl VarTable {
    /// Empty table.
    pub fn new() -> Self {
        VarTable::default()
    }

    /// Declare a fresh variable.
    pub fn declare(&mut self, name: impl Into<String>, sort: Sort) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.into(),
            sort,
        });
        id
    }

    /// Metadata for a variable.
    pub fn info(&self, v: VarId) -> &VarInfo {
        &self.vars[v.index()]
    }

    /// Sort of a variable.
    pub fn sort(&self, v: VarId) -> Sort {
        self.vars[v.index()].sort
    }

    /// Name of a variable.
    pub fn name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// Number of declared variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True if no variables are declared.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterate over `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &VarInfo)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, info)| (VarId(i as u32), info))
    }

    /// Find a variable by name (linear scan; diagnostics only).
    pub fn find(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut t = VarTable::new();
        let a = t.declare("a", Sort::Int);
        let b = t.declare("b", Sort::Real);
        assert_eq!(t.len(), 2);
        assert_ne!(a, b);
        assert_eq!(t.sort(a), Sort::Int);
        assert_eq!(t.name(b), "b");
        assert_eq!(t.find("a"), Some(a));
        assert_eq!(t.find("zzz"), None);
        assert_eq!(a.to_string(), "v0");
    }
}
