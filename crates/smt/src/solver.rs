//! The SMT solver: lazy DPLL(T) over the CDCL SAT core and the simplex
//! theory solver, with integer branch-and-bound for `Int`-sorted variables
//! and preprocessing of divisibility constraints.
//!
//! The loop is the classic lazy scheme: the SAT solver proposes a boolean
//! assignment of the atom skeleton, the theory checks the implied
//! conjunction of bounds, and each theory conflict comes back as a
//! blocking clause (theory lemma) built from the simplex explanation.

use crate::formula::Formula;
use crate::sat::{dimacs, Lit, SatResult, SatSolver};
use crate::simplex::{Conflict, Expl, QDelta, Simplex};
use crate::term::{LinTerm, Rel};
use crate::var::{Sort, VarId, VarTable};
use sia_check::{AtomTable, CertifiedUnsat, FarkasCertificate, Justification, LinearIneq};
use sia_num::{BigInt, BigRat};
use std::collections::HashMap;

/// Result of an SMT `check`.
#[derive(Debug, Clone)]
pub enum SmtResult {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// Resource budget exhausted before a verdict.
    Unknown,
}

impl SmtResult {
    /// True iff `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SmtResult::Sat(_))
    }

    /// True iff `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SmtResult::Unsat)
    }

    /// The model, if `Sat`.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SmtResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// A satisfying assignment.
#[derive(Debug, Clone, Default)]
pub struct Model {
    arith: HashMap<VarId, BigRat>,
    bools: HashMap<VarId, bool>,
}

impl Model {
    /// Rational value of an arithmetic variable (0 if unconstrained).
    pub fn rat(&self, v: VarId) -> BigRat {
        self.arith.get(&v).cloned().unwrap_or_else(BigRat::zero)
    }

    /// Integer value of an `Int` variable.
    ///
    /// # Panics
    /// Panics if the model value is not integral (cannot happen for
    /// variables declared `Int`).
    pub fn int(&self, v: VarId) -> BigInt {
        let r = self.rat(v);
        assert!(r.is_integer(), "model value of {v} is not integral: {r}");
        r.numer().clone()
    }

    /// Boolean value of a `Bool` variable (false if unconstrained).
    pub fn boolean(&self, v: VarId) -> bool {
        self.bools.get(&v).copied().unwrap_or(false)
    }

    /// Evaluate a formula under this model.
    pub fn eval(&self, f: &Formula) -> bool {
        f.eval(&|v| self.rat(v), &|v| self.boolean(v))
    }
}

/// Tunable resource limits.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Maximum lazy DPLL(T) rounds before `Unknown`.
    pub max_rounds: u64,
    /// Maximum branch-and-bound nodes per theory check before `Unknown`.
    pub max_bb_nodes: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            // Formulas from query predicates solve in tens of lazy rounds;
            // thousands signal a pathological (Cooper-blowup) region that
            // callers handle by degrading to CEGQI — so fail fast.
            max_rounds: 4_000,
            max_bb_nodes: 5_000,
        }
    }
}

/// Cumulative statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct SolverStats {
    /// `check` invocations.
    pub checks: u64,
    /// Lazy loop rounds across all checks.
    pub rounds: u64,
    /// Theory lemmas learned.
    pub theory_lemmas: u64,
    /// Branch-and-bound nodes explored.
    pub bb_nodes: u64,
}

/// The SMT solver façade: declare variables, then [`Solver::check`]
/// formulas over them. Each `check` is self-contained (no assertion
/// stack); callers conjoin what they need.
#[derive(Debug, Default)]
pub struct Solver {
    vars: VarTable,
    /// Resource limits.
    pub config: SolverConfig,
    /// Statistics.
    pub stats: SolverStats,
    /// Cooperative deadline/cancel token. Cloned into the CDCL and simplex
    /// cores on every [`Solver::check`], which return `Unknown` promptly
    /// once it is exhausted. Unlimited by default.
    pub budget: crate::Budget,
}

impl Solver {
    /// Fresh solver.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Solver with explicit limits.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            ..Solver::default()
        }
    }

    /// Declare a variable.
    pub fn declare(&mut self, name: impl Into<String>, sort: Sort) -> VarId {
        self.vars.declare(name, sort)
    }

    /// The variable table (names, sorts).
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// Decide satisfiability of `f` and produce a model if satisfiable.
    ///
    /// Every `Sat` verdict is validated by replaying the model through the
    /// formula evaluator before it is returned. Under the `checked` cargo
    /// feature, every `Unsat` verdict additionally carries a certificate
    /// that is verified by the independent `sia-check` crate; a rejected
    /// certificate panics rather than returning an unsound verdict.
    #[cfg(not(feature = "checked"))]
    pub fn check(&mut self, f: &Formula) -> SmtResult {
        self.stats.checks += 1;
        let _span = sia_obs::span("smt.check");
        let mut ctx = CheckCtx::new(&self.vars, &self.config, false, self.budget.clone());
        let result = ctx.run(f);
        self.stats.rounds += ctx.rounds;
        self.stats.theory_lemmas += ctx.lemmas;
        self.stats.bb_nodes += ctx.bb_nodes;
        record_check_metrics(&ctx);
        result
    }

    /// Decide satisfiability of `f`, self-verifying every verdict (the
    /// `checked` build): `Sat` models replay through the evaluator, and
    /// `Unsat` certificates must pass [`sia_check::check_refutation`].
    #[cfg(feature = "checked")]
    pub fn check(&mut self, f: &Formula) -> SmtResult {
        let (result, cert) = self.check_with_certificate(f);
        if let Some(cert) = cert {
            let _span = sia_obs::span("check.verify");
            match sia_check::check_refutation(&cert) {
                Ok(report) => {
                    use sia_obs::Counter as C;
                    sia_obs::add(C::CheckCertificates, 1);
                    sia_obs::add(C::CheckRupSteps, report.derived as u64);
                    sia_obs::add(C::CheckFarkasLemmas, report.farkas_lemmas as u64);
                    sia_obs::add(C::CheckBranchLemmas, report.branch_lemmas as u64);
                }
                Err(e) => panic!("unsound Unsat verdict: certificate rejected: {e}"),
            }
        }
        result
    }

    /// Like `check`, but when the verdict is `Unsat` also return the
    /// certificate (atom table plus clause-proof log) for independent
    /// verification with [`sia_check::check_refutation`].
    pub fn check_with_certificate(&mut self, f: &Formula) -> (SmtResult, Option<CertifiedUnsat>) {
        self.stats.checks += 1;
        let _span = sia_obs::span("smt.check");
        let mut ctx = CheckCtx::new(&self.vars, &self.config, true, self.budget.clone());
        let result = ctx.run(f);
        self.stats.rounds += ctx.rounds;
        self.stats.theory_lemmas += ctx.lemmas;
        self.stats.bb_nodes += ctx.bb_nodes;
        record_check_metrics(&ctx);
        let cert = result.is_unsat().then(|| ctx.into_certificate());
        (result, cert)
    }
}

/// Flush one check's solver counters into the observability collector.
///
/// The CDCL and simplex hot loops keep plain local counters (`SatStats`,
/// `Simplex::pivots`, …); batching the flush here — once per `check`
/// rather than per decision/propagation/pivot — is what keeps the no-op
/// instrumentation overhead inside the <3% budget.
fn record_check_metrics(ctx: &CheckCtx<'_>) {
    if !sia_obs::enabled() {
        return;
    }
    use sia_obs::Counter as C;
    let sat = &ctx.sat.stats;
    sia_obs::add(C::SmtChecks, 1);
    sia_obs::add(C::SatDecisions, sat.decisions);
    sia_obs::add(C::SatConflicts, sat.conflicts);
    sia_obs::add(C::SatPropagations, sat.propagations);
    sia_obs::add(C::SatRestarts, sat.restarts);
    sia_obs::add(C::SimplexPivots, ctx.simplex.pivots);
    sia_obs::add(C::SimplexTightenings, ctx.simplex.tightenings);
    sia_obs::add(C::SmtRounds, ctx.rounds);
    sia_obs::add(C::SmtTheoryLemmas, ctx.lemmas);
    sia_obs::add(C::SmtBbNodes, ctx.bb_nodes);
}

/// Canonical key for an arithmetic atom's variable combination.
type ComboKey = Vec<(VarId, BigRat)>;

/// One atom's translation: which simplex variable it bounds and how.
#[derive(Debug, Clone)]
struct AtomInfo {
    simplex_var: usize,
    /// Bound asserted when the atom literal is TRUE.
    on_true: BoundSpec,
    /// Bound asserted when the atom literal is FALSE (the negation).
    on_false: BoundSpec,
    /// `≤`-form inequality over original variables for the TRUE literal,
    /// as the certificate checker sees it.
    true_ineq: LinearIneq,
    /// Same for the FALSE (negated) literal.
    false_ineq: LinearIneq,
}

#[derive(Debug, Clone)]
enum BoundSpec {
    Upper(QDelta),
    Lower(QDelta),
}

/// Write a bound on the canonical combination as `Σ c·x ≤ b` (`<` when
/// strict): upper bounds directly, lower bounds with both sides negated.
fn le_form(key: &ComboKey, spec: &BoundSpec) -> (Vec<(u32, BigRat)>, BigRat, bool) {
    match spec {
        BoundSpec::Upper(q) => (
            key.iter()
                .map(|(v, c)| (v.index() as u32, c.clone()))
                .collect(),
            q.r.clone(),
            q.k.is_negative(),
        ),
        BoundSpec::Lower(q) => (
            key.iter()
                .map(|(v, c)| (v.index() as u32, -c.clone()))
                .collect(),
            -q.r.clone(),
            q.k.is_positive(),
        ),
    }
}

/// The checker-facing inequality for a (possibly integer-tightened) bound;
/// when tightening changed the bound, records the original for the checker
/// to re-validate the rounding.
fn ineq_of(key: &ComboKey, spec: &BoundSpec, raw: &BoundSpec) -> LinearIneq {
    let (coeffs, bound, strict) = le_form(key, spec);
    let (_, raw_bound, raw_strict) = le_form(key, raw);
    let mut ineq = LinearIneq::new(coeffs, bound, strict);
    if ineq.bound != raw_bound || ineq.strict != raw_strict {
        ineq.tightened_from = Some((raw_bound, raw_strict));
    }
    ineq
}

struct CheckCtx<'a> {
    vars: &'a VarTable,
    config: &'a SolverConfig,
    sat: SatSolver,
    simplex: Simplex,
    /// VarId → simplex var (for arithmetic vars incl. fresh ones).
    arith_map: HashMap<VarId, usize>,
    /// simplex var → VarId for model extraction of declared vars.
    back_map: HashMap<usize, VarId>,
    /// combo key → slack simplex var.
    combos: HashMap<ComboKey, usize>,
    /// sat var → atom translation (None for pure boolean vars).
    atoms: Vec<Option<AtomInfo>>,
    /// canonical atom → sat var, so repeated atoms share one literal.
    atom_memo: HashMap<(Rel, bool, BigRat, ComboKey), usize>,
    /// VarId (bool) → sat var.
    bool_map: HashMap<VarId, usize>,
    /// simplex vars that must take integral values.
    int_simplex_vars: Vec<usize>,
    /// next fresh VarId (beyond the declared table).
    next_fresh: u32,
    /// record a proof log and atom table for an Unsat certificate.
    certify: bool,
    /// Cooperative cancellation token, also cloned into `sat` and
    /// `simplex`; polled once per lazy round and branch-and-bound node.
    budget: crate::Budget,
    rounds: u64,
    lemmas: u64,
    bb_nodes: u64,
}

impl<'a> CheckCtx<'a> {
    fn new(
        vars: &'a VarTable,
        config: &'a SolverConfig,
        certify: bool,
        budget: crate::Budget,
    ) -> Self {
        let mut sat = SatSolver::new();
        sat.budget = budget.clone();
        let mut simplex = Simplex::new();
        simplex.budget = budget.clone();
        CheckCtx {
            vars,
            config,
            certify,
            budget,
            sat,
            simplex,
            arith_map: HashMap::new(),
            back_map: HashMap::new(),
            combos: HashMap::new(),
            atoms: Vec::new(),
            atom_memo: HashMap::new(),
            bool_map: HashMap::new(),
            int_simplex_vars: Vec::new(),
            next_fresh: vars.len() as u32,
            rounds: 0,
            lemmas: 0,
            bb_nodes: 0,
        }
    }

    fn fresh_int(&mut self) -> VarId {
        let id = VarId(self.next_fresh);
        self.next_fresh += 1;
        id
    }

    fn sort_of(&self, v: VarId) -> Sort {
        if v.index() < self.vars.len() {
            self.vars.sort(v)
        } else {
            Sort::Int // fresh vars are always divisibility witnesses
        }
    }

    fn simplex_var(&mut self, v: VarId) -> usize {
        if let Some(&s) = self.arith_map.get(&v) {
            return s;
        }
        let s = self.simplex.new_var();
        self.arith_map.insert(v, s);
        self.back_map.insert(s, v);
        if self.sort_of(v) == Sort::Int {
            self.int_simplex_vars.push(s);
        }
        s
    }

    /// Rewrite divisibility literals into linear constraints with fresh
    /// integer witnesses: `m | t` ⇒ `t = m·k`; `m ∤ t` ⇒ `t = m·k + r ∧
    /// 1 ≤ r ≤ m-1`. The formula must already be in NNF.
    fn lower_divisibility(&mut self, f: &Formula) -> Formula {
        match f {
            Formula::Divides(m, t) => {
                let k = self.fresh_int();
                let mk = LinTerm::var(k).scale(&BigRat::from_int(m.clone()));
                Formula::eq0(t.sub(&mk))
            }
            Formula::NotDivides(m, t) => {
                let k = self.fresh_int();
                let r = self.fresh_int();
                let mk = LinTerm::var(k).scale(&BigRat::from_int(m.clone()));
                let rt = LinTerm::var(r);
                let def = Formula::eq0(t.sub(&mk).sub(&rt));
                // 1 ≤ r ≤ m-1  ⇔  1 - r ≤ 0 ∧ r - (m-1) ≤ 0
                let low = Formula::le0(LinTerm::constant(BigRat::one()).sub(&rt));
                let hi = Formula::le0(rt.add(&LinTerm::constant(BigRat::from_int(
                    BigInt::one() - m.clone(),
                ))));
                def.and(low).and(hi)
            }
            Formula::And(fs) => Formula::and_all(fs.iter().map(|g| self.lower_divisibility(g))),
            Formula::Or(fs) => Formula::or_all(fs.iter().map(|g| self.lower_divisibility(g))),
            Formula::Not(g) => {
                // NNF guarantees Not only wraps BoolVar.
                Formula::Not(Box::new(self.lower_divisibility(g)))
            }
            other => other.clone(),
        }
    }

    /// Get/create the SAT variable for a canonical atom, registering its
    /// bound translation.
    fn atom_sat_var(&mut self, rel: Rel, term: &LinTerm) -> Lit {
        // term rel 0  ⇔  Σ aᵢxᵢ rel -c. Normalize the variable part.
        let combo_term = term.without_constant().normalize_integer();
        // normalize_integer on just the var part: compute the positive
        // scale factor f such that combo = f · var_part; then the bound is
        // -c · f ... easier: find factor by comparing a leading coeff.
        let lead = term.iter().next().expect("atom with variables").0;
        let orig_lead = term.coeff(lead);
        let norm_lead = combo_term.coeff(lead);
        // factor = norm/orig (may be negative if normalize flipped sign —
        // it cannot: normalize_integer multiplies by a positive rational).
        let factor = &norm_lead / &orig_lead;
        debug_assert!(factor.is_positive());
        let bound_val = -(term.constant_term() * &factor);
        // Canonical: make leading coefficient positive so that `combo` and
        // `-combo` share a slack variable.
        let (combo_term, bound_val, flipped) = if combo_term.coeff(lead).is_negative() {
            (combo_term.negated(), -bound_val, true)
        } else {
            (combo_term, bound_val, false)
        };
        let key: ComboKey = combo_term.iter().map(|(v, k)| (v, k.clone())).collect();
        let memo_key = (rel, flipped, bound_val.clone(), key.clone());
        if let Some(&sv) = self.atom_memo.get(&memo_key) {
            return Lit::pos(sv);
        }
        let simplex_var = match self.combos.get(&key) {
            Some(&s) => s,
            None => {
                let s = if key.len() == 1 && key[0].1 == BigRat::one() {
                    self.simplex_var(key[0].0)
                } else {
                    let parts: Vec<(usize, BigRat)> = key
                        .iter()
                        .map(|(v, k)| (self.simplex_var(*v), k.clone()))
                        .collect();
                    let s = self.simplex.new_var();
                    self.simplex.define(s, parts);
                    // A combination of integer variables with integer
                    // coefficients is itself integral. Branching on the
                    // slack gives branch-and-bound GCD-style cuts for free
                    // (e.g. 2x - 2y = 1 refutes by branching on x - y at
                    // value 1/2) — without it, unbounded diophantine
                    // conflicts diverge.
                    let integral = key
                        .iter()
                        .all(|(v, k)| self.sort_of(*v) == Sort::Int && k.is_integer());
                    if integral {
                        self.int_simplex_vars.push(s);
                    }
                    s
                };
                self.combos.insert(key.clone(), s);
                s
            }
        };
        // Effective relation after the potential flip:
        //   combo rel bound   (no flip)
        //   combo rel' bound  with rel' = flipped direction (flip)
        // rel ∈ {Le, Lt} means term ≤/< 0 i.e. combo ≤/< bound originally;
        // after flip: combo ≥/> bound.
        let (on_true, on_false) = if !flipped {
            match rel {
                Rel::Le => (
                    BoundSpec::Upper(QDelta::rational(bound_val.clone())),
                    BoundSpec::Lower(QDelta::plus_delta(bound_val)),
                ),
                Rel::Lt => (
                    BoundSpec::Upper(QDelta::minus_delta(bound_val.clone())),
                    BoundSpec::Lower(QDelta::rational(bound_val)),
                ),
            }
        } else {
            match rel {
                Rel::Le => (
                    BoundSpec::Lower(QDelta::rational(bound_val.clone())),
                    BoundSpec::Upper(QDelta::minus_delta(bound_val)),
                ),
                Rel::Lt => (
                    BoundSpec::Lower(QDelta::plus_delta(bound_val.clone())),
                    BoundSpec::Upper(QDelta::rational(bound_val)),
                ),
            }
        };
        // Integer bound tightening: an integral combination satisfies
        // `s < c` iff `s ≤ ⌈c⌉-1` and `s > c` iff `s ≥ ⌊c⌋+1`. This turns
        // strict-window infeasibilities (e.g. 18 < s < 20 ∧ s = 19 is the
        // only slot but excluded elsewhere) into direct simplex conflicts,
        // and makes branch-and-bound unnecessary for most queries.
        let combo_integral = key
            .iter()
            .all(|(v, k)| self.sort_of(*v) == Sort::Int && k.is_integer());
        let (raw_true, raw_false) = (on_true, on_false);
        let (on_true, on_false) = if combo_integral {
            (
                tighten_int(raw_true.clone()),
                tighten_int(raw_false.clone()),
            )
        } else {
            (raw_true.clone(), raw_false.clone())
        };
        let true_ineq = ineq_of(&key, &on_true, &raw_true);
        let false_ineq = ineq_of(&key, &on_false, &raw_false);
        let sv = self.sat.new_var();
        debug_assert_eq!(sv, self.atoms.len());
        self.atoms.push(Some(AtomInfo {
            simplex_var,
            on_true,
            on_false,
            true_ineq,
            false_ineq,
        }));
        self.atom_memo.insert(memo_key, sv);
        Lit::pos(sv)
    }

    /// Add an encoding clause, logging it as a proof [`sia_check::ProofStep::Input`]
    /// first (the log call is a no-op unless proof logging is enabled).
    fn add_input_clause(&mut self, clause: Vec<Lit>) -> bool {
        self.sat.log_input(&clause);
        self.sat.add_clause(clause)
    }

    fn bool_sat_var(&mut self, v: VarId) -> usize {
        if let Some(&sv) = self.bool_map.get(&v) {
            return sv;
        }
        let sv = self.sat.new_var();
        debug_assert_eq!(sv, self.atoms.len());
        self.atoms.push(None);
        self.bool_map.insert(v, sv);
        sv
    }

    /// Tseitin conversion of an NNF, divisibility-free formula. Returns
    /// the literal equivalent to (implying) the formula.
    fn tseitin(&mut self, f: &Formula) -> Result<Lit, bool> {
        match f {
            Formula::True => Err(true),
            Formula::False => Err(false),
            Formula::Atom(a) => Ok(self.atom_sat_var(a.rel, &a.term)),
            Formula::BoolVar(v) => Ok(Lit::pos(self.bool_sat_var(*v))),
            Formula::Not(g) => match g.as_ref() {
                Formula::BoolVar(v) => Ok(Lit::neg(self.bool_sat_var(*v))),
                _ => unreachable!("NNF leaves negation only on bool vars"),
            },
            Formula::Divides(..) | Formula::NotDivides(..) => {
                unreachable!("divisibility lowered before tseitin")
            }
            Formula::And(fs) => {
                let mut lits = Vec::with_capacity(fs.len());
                for g in fs {
                    match self.tseitin(g) {
                        Ok(l) => lits.push(l),
                        Err(true) => {}
                        Err(false) => return Err(false),
                    }
                }
                if lits.is_empty() {
                    return Err(true);
                }
                if lits.len() == 1 {
                    return Ok(lits[0]);
                }
                let y = self.sat.new_var();
                self.atoms.push(None);
                // y → lᵢ for each i (Plaisted–Greenbaum, positive polarity
                // suffices for NNF input).
                for l in &lits {
                    self.add_input_clause(vec![Lit::neg(y), *l]);
                }
                Ok(Lit::pos(y))
            }
            Formula::Or(fs) => {
                let mut lits = Vec::with_capacity(fs.len());
                for g in fs {
                    match self.tseitin(g) {
                        Ok(l) => lits.push(l),
                        Err(false) => {}
                        Err(true) => return Err(true),
                    }
                }
                if lits.is_empty() {
                    return Err(false);
                }
                if lits.len() == 1 {
                    return Ok(lits[0]);
                }
                let y = self.sat.new_var();
                self.atoms.push(None);
                // y → (l₁ ∨ … ∨ lₙ)
                let mut clause = vec![Lit::neg(y)];
                clause.extend(lits.iter().copied());
                self.add_input_clause(clause);
                Ok(Lit::pos(y))
            }
        }
    }

    fn run(&mut self, f: &Formula) -> SmtResult {
        if self.certify {
            self.sat.enable_proof();
        }
        let nnf = f.nnf();
        let lowered = self.lower_divisibility(&nnf);
        // lower_divisibility introduces Eq0 (And of atoms) inside; it is
        // still NNF. Re-normalize in case constant folding exposed literals.
        match self.tseitin(&lowered) {
            Err(false) => {
                // The encoding collapsed to ⊥ by constant folding: log an
                // axiomatic empty clause so the certificate closes.
                self.sat.log_input(&[]);
                let _ = self.sat.add_clause(vec![]);
                return SmtResult::Unsat;
            }
            Err(true) => return SmtResult::Sat(Model::default()),
            Ok(root) => {
                self.add_input_clause(vec![root]);
            }
        }
        loop {
            if self.rounds >= self.config.max_rounds || self.budget.is_exhausted() {
                return SmtResult::Unknown;
            }
            self.rounds += 1;
            match self.sat.solve() {
                SatResult::Unsat => return SmtResult::Unsat,
                SatResult::Interrupted => return SmtResult::Unknown,
                SatResult::Sat => {}
            }
            // Assert the theory literals implied by the boolean model.
            self.simplex.push();
            let mut conflict: Option<Conflict> = None;
            let mut asserted: Vec<Lit> = Vec::new();
            for sv in 0..self.atoms.len() {
                let Some(info) = &self.atoms[sv] else {
                    continue;
                };
                let truth = self.sat.model_value(sv);
                let lit = Lit::with_sign(sv, truth);
                let spec = if truth {
                    info.on_true.clone()
                } else {
                    info.on_false.clone()
                };
                let tag = Expl(lit_code(lit));
                let res = match spec {
                    BoundSpec::Upper(b) => self.simplex.assert_upper(info.simplex_var, b, tag),
                    BoundSpec::Lower(b) => self.simplex.assert_lower(info.simplex_var, b, tag),
                };
                asserted.push(lit);
                if let Err(c) = res {
                    conflict = Some(c);
                    break;
                }
            }
            if conflict.is_none() {
                conflict = self.simplex.check().err();
                if conflict.is_none() && self.simplex.interrupted() {
                    self.simplex.pop();
                    return SmtResult::Unknown;
                }
            }
            match conflict {
                Some(c) => {
                    self.simplex.pop();
                    self.learn_conflict(&c, &asserted);
                }
                None => {
                    // Rational model found; enforce integrality.
                    let mut budget = self.config.max_bb_nodes;
                    let bb = self.branch_and_bound(&mut budget, 0);
                    match bb {
                        BbResult::Sat => {
                            let model = self.extract_model();
                            self.simplex.pop();
                            // Every Sat verdict is replayed through the
                            // formula evaluator before being returned; a
                            // failure here is a solver soundness bug.
                            if !model.eval(f) {
                                if cfg!(any(debug_assertions, feature = "checked")) {
                                    panic!("unsound Sat verdict: model does not satisfy {f}");
                                }
                                return SmtResult::Unknown;
                            }
                            return SmtResult::Sat(model);
                        }
                        BbResult::Infeasible => {
                            self.simplex.pop();
                            // Weak lemma: not this exact combination of
                            // theory literals. Rests on branch-and-bound's
                            // integer search, so it has no Farkas witness.
                            let clause: Vec<Lit> = asserted.iter().map(|l| l.negated()).collect();
                            self.lemmas += 1;
                            self.sat.log_lemma(&clause, Justification::IntegerBranch);
                            if !self.sat.add_clause(clause) {
                                return SmtResult::Unsat;
                            }
                        }
                        BbResult::Budget => {
                            self.simplex.pop();
                            return SmtResult::Unknown;
                        }
                    }
                }
            }
        }
    }

    fn learn_conflict(&mut self, c: &Conflict, asserted: &[Lit]) {
        self.lemmas += 1;
        if c.has_internal() {
            // A branch-and-bound bound participates: no rational witness,
            // fall back to blocking the whole assignment.
            let clause: Vec<Lit> = asserted.iter().map(|l| l.negated()).collect();
            self.sat.log_lemma(&clause, Justification::IntegerBranch);
            let _ = self.sat.add_clause(clause);
        } else {
            let clause: Vec<Lit> = c
                .tags
                .iter()
                .map(|t| lit_from_code(t.0).negated())
                .collect();
            let terms = c
                .premises
                .iter()
                .map(|(e, m)| (dimacs(lit_from_code(e.0)), m.clone()))
                .collect();
            self.sat
                .log_lemma(&clause, Justification::Farkas(FarkasCertificate { terms }));
            let _ = self.sat.add_clause(clause);
        }
    }

    /// Branch and bound over the integer simplex variables. On `Sat` the
    /// simplex state (with all branching bounds pushed) is left in place so
    /// the model can be read; otherwise the state is restored.
    fn branch_and_bound(&mut self, budget: &mut u64, depth: u32) -> BbResult {
        // Recursion depth cap: deep chains of branchings indicate an
        // unbounded diophantine search; give up rather than overflow.
        if *budget == 0 || depth > 120 || self.budget.is_exhausted() {
            return BbResult::Budget;
        }
        *budget -= 1;
        self.bb_nodes += 1;
        if self.simplex.check().is_err() {
            return BbResult::Infeasible;
        }
        if self.simplex.interrupted() {
            return BbResult::Budget;
        }
        let delta = self.simplex.concrete_delta();
        // Prefer branching on doubly-bounded fractional variables (equality
        // slacks and boxed variables): their branches refute or fix
        // immediately, whereas branching on an unbounded variable of an
        // unsatisfiable diophantine system descends forever.
        let mut branch_var: Option<(usize, BigRat)> = None;
        let mut fallback: Option<(usize, BigRat)> = None;
        for &x in &self.int_simplex_vars {
            let v = self.simplex.value(x).materialize(&delta);
            if !v.is_integer() {
                let boxed =
                    self.simplex.lower_bound(x).is_some() && self.simplex.upper_bound(x).is_some();
                if boxed {
                    branch_var = Some((x, v));
                    break;
                }
                if fallback.is_none() {
                    fallback = Some((x, v));
                }
            }
        }
        let Some((x, v)) = branch_var.or(fallback) else {
            return BbResult::Sat;
        };
        let fl = v.floor();
        // Branch x ≤ ⌊v⌋.
        self.simplex.push();
        if self
            .simplex
            .assert_upper(
                x,
                QDelta::rational(BigRat::from_int(fl.clone())),
                Expl::INTERNAL,
            )
            .is_ok()
        {
            match self.branch_and_bound(budget, depth + 1) {
                BbResult::Sat => return BbResult::Sat,
                BbResult::Budget => {
                    self.simplex.pop();
                    return BbResult::Budget;
                }
                BbResult::Infeasible => {}
            }
        }
        self.simplex.pop();
        // Branch x ≥ ⌊v⌋+1.
        self.simplex.push();
        if self
            .simplex
            .assert_lower(
                x,
                QDelta::rational(BigRat::from_int(fl + BigInt::one())),
                Expl::INTERNAL,
            )
            .is_ok()
        {
            match self.branch_and_bound(budget, depth + 1) {
                BbResult::Sat => return BbResult::Sat,
                BbResult::Budget => {
                    self.simplex.pop();
                    return BbResult::Budget;
                }
                BbResult::Infeasible => {}
            }
        }
        self.simplex.pop();
        BbResult::Infeasible
    }

    /// The literal → inequality table for the certificate checker: each
    /// theory atom contributes one entry per polarity, plus the set of
    /// integer-sorted variables (declared and fresh witnesses) needed to
    /// validate integer bound tightenings.
    fn build_atom_table(&self) -> AtomTable {
        let mut table = AtomTable::default();
        for (sv, info) in self.atoms.iter().enumerate() {
            let Some(info) = info else {
                continue;
            };
            let lit = sv as i64 + 1;
            table.entries.insert(lit, info.true_ineq.clone());
            table.entries.insert(-lit, info.false_ineq.clone());
        }
        for v in self.arith_map.keys() {
            if self.sort_of(*v) == Sort::Int {
                table.int_vars.insert(v.index() as u32);
            }
        }
        table
    }

    /// Package the proof log and atom table recorded during an Unsat run.
    fn into_certificate(mut self) -> CertifiedUnsat {
        CertifiedUnsat {
            atoms: self.build_atom_table(),
            steps: self.sat.take_proof(),
        }
    }

    fn extract_model(&self) -> Model {
        let delta = self.simplex.concrete_delta();
        let mut model = Model::default();
        for (v, &s) in &self.arith_map {
            if v.index() < self.vars.len() {
                let mut val = self.simplex.value(s).materialize(&delta);
                if self.vars.sort(*v) == Sort::Int && !val.is_integer() {
                    // An Int var outside every atom may carry a spurious
                    // fractional part from delta materialization; it is
                    // unconstrained in that direction, so round.
                    val = BigRat::from_int(val.floor());
                }
                model.arith.insert(*v, val);
            }
        }
        for (v, &sv) in &self.bool_map {
            model.bools.insert(*v, self.sat.model_value(sv));
        }
        model
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BbResult {
    Sat,
    Infeasible,
    Budget,
}

/// Tighten a bound on an integer-valued variable to the nearest integer:
/// upper bounds round down (strict `< c` ⇒ `≤ ⌈c⌉-1`), lower bounds round
/// up (strict `> c` ⇒ `≥ ⌊c⌋+1`).
fn tighten_int(spec: BoundSpec) -> BoundSpec {
    match spec {
        BoundSpec::Upper(q) => {
            let v = if q.k.is_negative() {
                // strict: largest integer strictly below r
                let c = q.r.ceil();
                BigRat::from_int(c - BigInt::one())
            } else {
                BigRat::from_int(q.r.floor())
            };
            BoundSpec::Upper(QDelta::rational(v))
        }
        BoundSpec::Lower(q) => {
            let v = if q.k.is_positive() {
                let f = q.r.floor();
                BigRat::from_int(f + BigInt::one())
            } else {
                BigRat::from_int(q.r.ceil())
            };
            BoundSpec::Lower(QDelta::rational(v))
        }
    }
}

fn lit_code(l: Lit) -> u32 {
    ((l.var() as u32) << 1) | u32::from(l.is_neg())
}

fn lit_from_code(code: u32) -> Lit {
    if code & 1 == 1 {
        Lit::neg((code >> 1) as usize)
    } else {
        Lit::pos((code >> 1) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula as F;

    fn int_solver(names: &[&str]) -> (Solver, Vec<VarId>) {
        let mut s = Solver::new();
        let vs = names.iter().map(|n| s.declare(*n, Sort::Int)).collect();
        (s, vs)
    }

    fn t1(v: VarId) -> LinTerm {
        LinTerm::var(v)
    }

    fn c(n: i64) -> LinTerm {
        LinTerm::constant(BigRat::from(n))
    }

    #[test]
    fn trivial() {
        let mut s = Solver::new();
        assert!(s.check(&F::True).is_sat());
        assert!(s.check(&F::False).is_unsat());
    }

    #[test]
    fn single_bound() {
        let (mut s, vs) = int_solver(&["x"]);
        let x = vs[0];
        // x - 5 <= 0
        let f = F::le0(t1(x).sub(&c(5)));
        let r = s.check(&f);
        let m = r.model().unwrap();
        assert!(m.int(x) <= BigInt::from(5i64));
    }

    #[test]
    fn conflicting_bounds() {
        let (mut s, vs) = int_solver(&["x"]);
        let x = vs[0];
        // x <= 2 and x >= 5
        let f = F::le0(t1(x).sub(&c(2))).and(F::le0(c(5).sub(&t1(x))));
        assert!(s.check(&f).is_unsat());
    }

    #[test]
    fn strict_integer_gap() {
        let (mut s, vs) = int_solver(&["x"]);
        let x = vs[0];
        // 0 < x < 1 has no integer solution (but is real-feasible).
        let f = F::lt0(c(0).sub(&t1(x))).and(F::lt0(t1(x).sub(&c(1))));
        assert!(s.check(&f).is_unsat());
    }

    #[test]
    fn strict_real_gap_is_sat() {
        let mut s = Solver::new();
        let x = s.declare("x", Sort::Real);
        let f = F::lt0(c(0).sub(&t1(x))).and(F::lt0(t1(x).sub(&c(1))));
        let r = s.check(&f);
        let m = r.model().unwrap();
        let v = m.rat(x);
        assert!(v > BigRat::zero() && v < BigRat::one(), "got {v}");
    }

    #[test]
    fn equality_and_sum() {
        let (mut s, vs) = int_solver(&["x", "y"]);
        let (x, y) = (vs[0], vs[1]);
        // x + y = 10 and x - y = 4  →  x = 7, y = 3
        let f = F::eq0(t1(x).add(&t1(y)).sub(&c(10))).and(F::eq0(t1(x).sub(&t1(y)).sub(&c(4))));
        let r = s.check(&f);
        let m = r.model().unwrap();
        assert_eq!(m.int(x), BigInt::from(7i64));
        assert_eq!(m.int(y), BigInt::from(3i64));
    }

    #[test]
    fn disequality() {
        let (mut s, vs) = int_solver(&["x"]);
        let x = vs[0];
        // 0 <= x <= 1 and x != 0 and x != 1 → unsat
        let f = F::le0(c(0).sub(&t1(x)))
            .and(F::le0(t1(x).sub(&c(1))))
            .and(F::ne0(t1(x)))
            .and(F::ne0(t1(x).sub(&c(1))));
        assert!(s.check(&f).is_unsat());
        // allowing x = 2 works
        let g = F::le0(c(0).sub(&t1(x)))
            .and(F::le0(t1(x).sub(&c(2))))
            .and(F::ne0(t1(x)))
            .and(F::ne0(t1(x).sub(&c(1))));
        let m = s.check(&g);
        assert_eq!(m.model().unwrap().int(x), BigInt::from(2i64));
    }

    #[test]
    fn disjunction() {
        let (mut s, vs) = int_solver(&["x"]);
        let x = vs[0];
        // (x <= -10 or x >= 10) and -5 <= x <= 5 → unsat
        let f = F::le0(t1(x).add(&c(10)))
            .or(F::le0(c(10).sub(&t1(x))))
            .and(F::le0(t1(x).sub(&c(5))))
            .and(F::le0(c(-5).sub(&t1(x))));
        assert!(s.check(&f).is_unsat());
    }

    #[test]
    fn integer_cut_diagonal() {
        let (mut s, vs) = int_solver(&["x", "y"]);
        let (x, y) = (vs[0], vs[1]);
        // 2x = 2y + 1 has no integer solution.
        let two = BigRat::from(2);
        let f = F::eq0(t1(x).scale(&two).sub(&t1(y).scale(&two)).sub(&c(1)));
        assert!(s.check(&f).is_unsat());
    }

    #[test]
    fn divisibility() {
        let (mut s, vs) = int_solver(&["x"]);
        let x = vs[0];
        // 10 <= x <= 12 and 7 | x  →  unsat; 7 | x with 13 <= x <= 15 → x = 14
        let dom = |lo: i64, hi: i64| F::le0(c(lo).sub(&t1(x))).and(F::le0(t1(x).sub(&c(hi))));
        let f = dom(10, 12).and(F::divides(BigInt::from(7i64), t1(x)));
        assert!(s.check(&f).is_unsat());
        let g = dom(13, 15).and(F::divides(BigInt::from(7i64), t1(x)));
        let m = s.check(&g);
        assert_eq!(m.model().unwrap().int(x), BigInt::from(14i64));
    }

    #[test]
    fn not_divides() {
        let (mut s, vs) = int_solver(&["x"]);
        let x = vs[0];
        // 4 <= x <= 6 and 2 ∤ x  →  x = 5
        let f = F::le0(c(4).sub(&t1(x)))
            .and(F::le0(t1(x).sub(&c(6))))
            .and(F::Divides(BigInt::from(2i64), t1(x)).not());
        let m = s.check(&f);
        assert_eq!(m.model().unwrap().int(x), BigInt::from(5i64));
    }

    #[test]
    fn boolean_mixing() {
        let mut s = Solver::new();
        let x = s.declare("x", Sort::Int);
        let p = s.declare("p", Sort::Bool);
        // (p or x <= 0) and (not p) and x >= 1  →  unsat
        let f = F::BoolVar(p)
            .or(F::le0(t1(x)))
            .and(F::BoolVar(p).not())
            .and(F::le0(c(1).sub(&t1(x))));
        assert!(s.check(&f).is_unsat());
        // drop x >= 1: sat with p=false, x<=0
        let g = F::BoolVar(p).or(F::le0(t1(x))).and(F::BoolVar(p).not());
        let r = s.check(&g);
        let m = r.model().unwrap();
        assert!(!m.boolean(p));
        assert!(m.int(x) <= BigInt::zero());
    }

    #[test]
    fn motivating_example_true_sample() {
        // p: a2 - b1 < 20 ∧ a1 - a2 < a2 - b1 + 10 ∧ b1 < 0 is satisfiable.
        let (mut s, vs) = int_solver(&["a1", "a2", "b1"]);
        let (a1, a2, b1) = (vs[0], vs[1], vs[2]);
        let p = F::lt0(t1(a2).sub(&t1(b1)).sub(&c(20)))
            .and(F::lt0(
                t1(a1).sub(&t1(a2)).sub(&t1(a2).sub(&t1(b1))).sub(&c(10)),
            ))
            .and(F::lt0(t1(b1)));
        let r = s.check(&p);
        let m = r.model().unwrap();
        // Verify model against the formula itself.
        assert!(m.eval(&p));
    }

    #[test]
    fn models_are_verified() {
        // Random-ish conjunctions/disjunctions; every SAT answer must
        // produce a model that evaluates to true.
        let (mut s, vs) = int_solver(&["x", "y", "z"]);
        let (x, y, z) = (vs[0], vs[1], vs[2]);
        let cases = [
            F::le0(t1(x).add(&t1(y)).sub(&c(3))).and(F::lt0(c(1).sub(&t1(x)))),
            F::eq0(t1(x).scale(&BigRat::from(3)).sub(&t1(y)).sub(&c(7)))
                .and(F::le0(t1(y).sub(&c(100))))
                .and(F::le0(c(-100).sub(&t1(y)))),
            F::ne0(t1(x).sub(&t1(y)))
                .and(F::ne0(t1(y).sub(&t1(z))))
                .and(F::le0(t1(x).sub(&c(1))))
                .and(F::le0(t1(y).sub(&c(1))))
                .and(F::le0(t1(z).sub(&c(1))))
                .and(F::le0(c(0).sub(&t1(x))))
                .and(F::le0(c(0).sub(&t1(y))))
                .and(F::le0(c(0).sub(&t1(z)))),
        ];
        for (i, f) in cases.iter().enumerate() {
            match s.check(f) {
                SmtResult::Sat(m) => assert!(m.eval(f), "case {i}: bad model"),
                SmtResult::Unsat => {
                    if i == 2 {
                        // x,y,z ∈ {0,1} pairwise-adjacent distinct: x≠y, y≠z is satisfiable (x=z=0,y=1)
                        panic!("case 2 should be satisfiable");
                    }
                }
                SmtResult::Unknown => panic!("case {i}: unknown"),
            }
        }
    }

    #[test]
    fn stats_accumulate() {
        let (mut s, vs) = int_solver(&["x"]);
        let x = vs[0];
        let f = F::le0(t1(x));
        let _ = s.check(&f);
        let _ = s.check(&f);
        assert_eq!(s.stats.checks, 2);
        assert!(s.stats.rounds >= 2);
    }
}
