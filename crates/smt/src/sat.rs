//! CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
//! analysis, VSIDS-style decision heuristic, phase saving, and Luby
//! restarts. Small and dependency-free; the DPLL(T) layer
//! ([`crate::solver`]) lazily adds theory lemmas as ordinary clauses.
//!
//! When proof logging is enabled ([`SatSolver::enable_proof`]), every
//! clause entering the database is recorded as a [`ProofStep`] in
//! chronological order — callers log their input clauses and theory
//! lemmas, while the solver itself logs each learned clause (and the
//! empty clause on refutation) as [`ProofStep::Derived`]. First-UIP
//! learned clauses are derivable by reverse unit propagation from the
//! clauses logged before them, so `sia-check` can replay the log
//! independently.

use sia_check::{Justification, ProofStep};

/// A literal: variable index with polarity. `code = var << 1 | neg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of variable `v`.
    pub fn pos(v: usize) -> Lit {
        Lit((v as u32) << 1)
    }

    /// Negative literal of variable `v`.
    pub fn neg(v: usize) -> Lit {
        Lit(((v as u32) << 1) | 1)
    }

    /// Literal of variable `v` with the given `positive` polarity.
    pub fn with_sign(v: usize, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable index.
    pub fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// True iff the literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite literal.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

/// DIMACS encoding of a literal: variable `v` (0-based) becomes `±(v+1)`,
/// negative when the literal is negated. This is the convention of the
/// `sia-check` proof checker.
pub fn dimacs(l: Lit) -> i64 {
    let v = (l.var() as i64) + 1;
    if l.is_neg() {
        -v
    } else {
        v
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_neg() {
            write!(f, "-x{}", self.var())
        } else {
            write!(f, "x{}", self.var())
        }
    }
}

/// Result of a SAT call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found (see [`SatSolver::model_value`]).
    Sat,
    /// No satisfying assignment exists.
    Unsat,
    /// The solver's [`crate::Budget`] was exhausted mid-search; no verdict.
    Interrupted,
}

type ClauseRef = usize;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
}

/// Solver statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct SatStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of unit propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
}

/// A CDCL SAT solver.
#[derive(Debug, Default)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<ClauseRef>>, // indexed by literal code
    assign: Vec<Option<bool>>,    // indexed by var
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    unsat: bool,
    /// Chronological clause-proof log; `None` until
    /// [`SatSolver::enable_proof`] is called.
    proof: Option<Vec<ProofStep>>,
    /// Statistics for the current lifetime of the solver.
    pub stats: SatStats,
    /// Cooperative cancellation token, polled every few hundred search
    /// steps inside [`SatSolver::solve`]. Unlimited by default.
    pub budget: crate::Budget,
}

impl SatSolver {
    /// Fresh solver with no variables.
    pub fn new() -> Self {
        SatSolver {
            var_inc: 1.0,
            ..SatSolver::default()
        }
    }

    /// Declare a new variable; returns its index.
    pub fn new_var(&mut self) -> usize {
        let v = self.assign.len();
        self.assign.push(None);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new()); // pos watch list
        self.watches.push(Vec::new()); // neg watch list
        v
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var()].map(|b| b != l.is_neg())
    }

    /// Start recording a clause-proof log. Call before any clause is
    /// added; otherwise earlier clauses are missing from the log and
    /// later derivations may not check.
    pub fn enable_proof(&mut self) {
        if self.proof.is_none() {
            self.proof = Some(Vec::new());
        }
    }

    /// Take the recorded proof log (empty if logging was never enabled).
    pub fn take_proof(&mut self) -> Vec<ProofStep> {
        self.proof.take().unwrap_or_default()
    }

    /// Record an axiomatic input clause (no-op unless proof logging is
    /// enabled). Callers log the clause **before** adding it.
    pub fn log_input(&mut self, lits: &[Lit]) {
        if let Some(p) = &mut self.proof {
            p.push(ProofStep::Input(lits.iter().copied().map(dimacs).collect()));
        }
    }

    /// Record a theory lemma with its justification (no-op unless proof
    /// logging is enabled). Callers log the lemma **before** adding it.
    pub fn log_lemma(&mut self, lits: &[Lit], just: Justification) {
        if let Some(p) = &mut self.proof {
            p.push(ProofStep::Lemma(
                lits.iter().copied().map(dimacs).collect(),
                just,
            ));
        }
    }

    fn log_derived(&mut self, lits: &[Lit]) {
        if let Some(p) = &mut self.proof {
            p.push(ProofStep::Derived(
                lits.iter().copied().map(dimacs).collect(),
            ));
        }
    }

    /// Add a clause. Returns `false` if the solver is already known UNSAT.
    /// Clauses may be added between `solve` calls (incremental use); the
    /// trail is rewound to level 0 first.
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) -> bool {
        if self.unsat {
            return false;
        }
        self.backtrack_to(0);
        lits.sort();
        lits.dedup();
        // Tautology?
        if lits.windows(2).any(|w| w[0] == w[1].negated()) {
            return true;
        }
        // Drop root-level-false literals; detect satisfied clauses.
        let mut filtered = Vec::with_capacity(lits.len());
        for l in lits {
            match self.value(l) {
                Some(true) => return true,
                Some(false) => {}
                None => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                // Every literal of the clause is false at the root, so the
                // empty clause follows by unit propagation over the logged
                // database (which contains this clause).
                self.unsat = true;
                self.log_derived(&[]);
                false
            }
            1 => {
                self.enqueue(filtered[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    self.log_derived(&[]);
                    false
                } else {
                    #[cfg(feature = "checked")]
                    self.check_invariants();
                    true
                }
            }
            _ => {
                let cref = self.clauses.len();
                self.watches[filtered[0].negated().code()].push(cref);
                self.watches[filtered[1].negated().code()].push(cref);
                self.clauses.push(Clause { lits: filtered });
                true
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert!(self.value(l).is_none());
        let v = l.var();
        self.assign[v] = Some(!l.is_neg());
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns a conflicting clause ref if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses watching ¬p must be visited: p just became true, so
            // the watcher list for literal p (code of p) holds clauses in
            // which one watched literal is ¬p... We store watches keyed by
            // the *falsified* literal: a clause watching literal l is in
            // watches[l.negated()]; when p becomes true, literals ¬p are
            // falsified, so visit watches[p.code()].
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            while i < ws.len() {
                let cref = ws[i];
                // Ensure the falsified literal is at position 1.
                let false_lit = p.negated();
                {
                    let c = &mut self.clauses[cref];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                }
                // First literal satisfied? keep watching.
                let first = self.clauses[cref].lits[0];
                if self.value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                let len = self.clauses[cref].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref].lits[k];
                    if self.value(lk) != Some(false) {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[lk.negated().code()].push(cref);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.value(first) == Some(false) {
                    // Conflict: restore remaining watches and report.
                    self.watches[p.code()].append(&mut ws);
                    return Some(cref);
                }
                self.enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[p.code()].append(&mut ws);
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay_activity(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns (learned clause, backjump level).
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let cur_level = self.trail_lim.len() as u32;
        let mut learned: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = conflict;
        let mut index = self.trail.len();
        loop {
            let start = usize::from(p.is_some());
            // Skip lits[0] when it is the asserting literal p itself.
            let lits: Vec<Lit> = self.clauses[cref].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if seen[v] || self.level[v] == 0 {
                    continue;
                }
                seen[v] = true;
                self.bump_var(v);
                if self.level[v] == cur_level {
                    counter += 1;
                } else {
                    learned.push(q);
                }
            }
            // Find next literal on the trail to resolve on.
            loop {
                index -= 1;
                if seen[self.trail[index].var()] {
                    break;
                }
            }
            let lit = self.trail[index];
            seen[lit.var()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            cref = self.reason[lit.var()].expect("non-decision must have a reason");
            p = Some(lit);
        }
        let asserting = p.unwrap().negated();
        learned.insert(0, asserting);
        let backjump = learned[1..]
            .iter()
            .map(|l| self.level[l.var()])
            .max()
            .unwrap_or(0);
        (learned, backjump)
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var();
                self.phase[v] = self.assign[v].unwrap();
                self.assign[v] = None;
                self.reason[v] = None;
            }
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<usize> = None;
        for v in 0..self.num_vars() {
            if self.assign[v].is_none() && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        best.map(|v| Lit::with_sign(v, self.phase[v]))
    }

    /// Solve the current clause set.
    pub fn solve(&mut self) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.unsat = true;
            self.log_derived(&[]);
            return SatResult::Unsat;
        }
        #[cfg(feature = "checked")]
        self.check_invariants();
        let mut conflicts_since_restart = 0u64;
        let mut restart_idx = 1u64;
        let mut restart_limit = 64 * luby(restart_idx);
        let mut steps = 0u64;
        loop {
            // Cooperative cancellation: one search step is one
            // propagate/analyze-or-decide round, so this polls the budget
            // every 512 conflicts-or-decisions regardless of which branch
            // the search is stuck in.
            steps += 1;
            if steps & 0x1FF == 0 && self.budget.is_exhausted() {
                return SatResult::Interrupted;
            }
            let conflicting = self.propagate();
            #[cfg(feature = "checked")]
            if conflicting.is_none() {
                self.check_invariants();
            }
            if let Some(conflict) = conflicting {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    self.log_derived(&[]);
                    return SatResult::Unsat;
                }
                let (mut learned, backjump) = self.analyze(conflict);
                #[allow(clippy::cast_precision_loss)]
                sia_obs::record(sia_obs::Hist::SatLearnedLen, learned.len() as f64);
                self.log_derived(&learned);
                self.backtrack_to(backjump);
                self.decay_activity();
                if learned.len() == 1 {
                    self.enqueue(learned[0], None);
                } else {
                    // Watch the asserting literal and a literal at the
                    // backjump level. The rest of the clause is false, and
                    // only a backjump-level watch is unassigned by exactly
                    // the backtracks that unassign the asserting literal —
                    // watching an arbitrary (lower-level) literal instead
                    // leaves the clause silently unit after backtracking,
                    // with no falsification event to re-trigger it.
                    let w = (2..learned.len()).fold(1, |w: usize, k| {
                        if self.level[learned[k].var()] > self.level[learned[w].var()] {
                            k
                        } else {
                            w
                        }
                    });
                    learned.swap(1, w);
                    let cref = self.clauses.len();
                    self.watches[learned[0].negated().code()].push(cref);
                    self.watches[learned[1].negated().code()].push(cref);
                    let asserting = learned[0];
                    self.clauses.push(Clause { lits: learned });
                    self.enqueue(asserting, Some(cref));
                }
            } else if conflicts_since_restart >= restart_limit {
                self.stats.restarts += 1;
                conflicts_since_restart = 0;
                restart_idx += 1;
                restart_limit = 64 * luby(restart_idx);
                self.backtrack_to(0);
            } else {
                match self.decide() {
                    None => return SatResult::Sat,
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, None);
                    }
                }
            }
        }
    }

    /// Value of variable `v` in the current model (valid after
    /// `solve() == Sat`).
    pub fn model_value(&self, v: usize) -> bool {
        self.assign[v].unwrap_or(false)
    }

    /// Exhaustive watched-literal and trail invariant checks, run after
    /// every conflict-free propagation fixpoint under the `checked`
    /// feature. O(total literals) per call — paranoia, not production.
    #[cfg(feature = "checked")]
    fn check_invariants(&self) {
        // Trail: fully propagated, every entry true, one entry per
        // assigned variable, levels within range.
        assert_eq!(
            self.qhead,
            self.trail.len(),
            "propagation queue not drained"
        );
        let mut on_trail = vec![false; self.num_vars()];
        for &l in &self.trail {
            assert_eq!(self.value(l), Some(true), "trail literal {l} not true");
            assert!(!on_trail[l.var()], "variable of {l} on trail twice");
            on_trail[l.var()] = true;
            assert!(
                self.level[l.var()] as usize <= self.trail_lim.len(),
                "literal {l} above current decision level"
            );
        }
        let assigned = self.assign.iter().filter(|a| a.is_some()).count();
        assert_eq!(assigned, self.trail.len(), "assignment off the trail");
        // Implied literals: reason clause propagates exactly them.
        for &l in &self.trail {
            if let Some(cref) = self.reason[l.var()] {
                let lits = &self.clauses[cref].lits;
                assert_eq!(lits[0], l, "reason clause head is not the implied literal");
                for &q in &lits[1..] {
                    assert_eq!(
                        self.value(q),
                        Some(false),
                        "reason tail literal {q} not false"
                    );
                }
            }
        }
        // Watches: every stored clause is watched by exactly its first two
        // literals, each appearing in the watch list of its negation.
        let mut watch_count = vec![0usize; self.clauses.len()];
        for (code, list) in self.watches.iter().enumerate() {
            let watched = Lit(code as u32).negated();
            for &cref in list {
                watch_count[cref] += 1;
                let lits = &self.clauses[cref].lits;
                assert!(
                    lits[0] == watched || lits[1] == watched,
                    "clause {cref} in watch list of non-watched literal {watched}"
                );
            }
        }
        for (cref, &n) in watch_count.iter().enumerate() {
            assert_eq!(n, 2, "clause {cref} has {n} watch entries, expected 2");
        }
        // No clause is falsified or unit-unpropagated at a fixpoint.
        for (cref, c) in self.clauses.iter().enumerate() {
            if c.lits.iter().any(|&l| self.value(l) == Some(true)) {
                continue;
            }
            let open = c.lits.iter().filter(|&&l| self.value(l).is_none()).count();
            if open < 2 {
                let detail: Vec<String> = c
                    .lits
                    .iter()
                    .map(|&l| format!("{l}={:?}@{}", self.value(l), self.level[l.var()]))
                    .collect();
                panic!(
                    "clause {cref} is {} at a propagation fixpoint: {detail:?}, cur_level={}",
                    if open == 0 { "falsified" } else { "unit" },
                    self.trail_lim.len()
                );
            }
        }
    }
}

/// The Luby restart sequence (1,1,2,1,1,2,4,…).
fn luby(mut i: u64) -> u64 {
    loop {
        // Find k with 2^k - 1 >= i
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_model(s: &SatSolver, clauses: &[Vec<Lit>]) {
        for c in clauses {
            assert!(
                c.iter().any(|l| s.model_value(l.var()) != l.is_neg()),
                "clause {c:?} not satisfied"
            );
        }
    }

    #[test]
    fn luby_sequence() {
        let seq: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn trivial_sat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert!(s.add_clause(vec![Lit::pos(a)]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(a));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert!(s.add_clause(vec![Lit::pos(a)]));
        assert!(!s.add_clause(vec![Lit::neg(a)]) || s.solve() == SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = SatSolver::new();
        let _ = s.new_var();
        assert!(!s.add_clause(vec![]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautology_ignored() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert!(s.add_clause(vec![Lit::pos(a), Lit::neg(a)]));
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = SatSolver::new();
        let vars: Vec<usize> = (0..10).map(|_| s.new_var()).collect();
        // x0 and (xi -> xi+1)
        assert!(s.add_clause(vec![Lit::pos(vars[0])]));
        for w in vars.windows(2) {
            assert!(s.add_clause(vec![Lit::neg(w[0]), Lit::pos(w[1])]));
        }
        assert_eq!(s.solve(), SatResult::Sat);
        for &v in &vars {
            assert!(s.model_value(v));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: p[i][j] = pigeon i in hole j.
        let mut s = SatSolver::new();
        let mut p = [[0usize; 2]; 3];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            assert!(s.add_clause(vec![Lit::pos(row[0]), Lit::pos(row[1])]));
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    assert!(s.add_clause(vec![Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]));
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn xor_chain_sat() {
        // (a xor b) and (b xor c) and a  =>  model a=1,b=0,c=1
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let clauses = vec![
            vec![Lit::pos(a), Lit::pos(b)],
            vec![Lit::neg(a), Lit::neg(b)],
            vec![Lit::pos(b), Lit::pos(c)],
            vec![Lit::neg(b), Lit::neg(c)],
            vec![Lit::pos(a)],
        ];
        for c in &clauses {
            assert!(s.add_clause(c.clone()));
        }
        assert_eq!(s.solve(), SatResult::Sat);
        check_model(&s, &clauses);
        assert!(s.model_value(a));
        assert!(!s.model_value(b));
        assert!(s.model_value(c));
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause(vec![Lit::pos(a), Lit::pos(b)]));
        assert_eq!(s.solve(), SatResult::Sat);
        // Block the found model, resolve; repeat until UNSAT. There are
        // exactly 3 models of (a or b).
        let mut models = 0;
        loop {
            let block: Vec<Lit> = [a, b]
                .iter()
                .map(|&v| Lit::with_sign(v, !s.model_value(v)))
                .collect();
            models += 1;
            if !s.add_clause(block) || s.solve() == SatResult::Unsat {
                break;
            }
            assert!(models <= 3, "too many models");
        }
        assert_eq!(models, 3);
    }

    #[test]
    fn random_3sat_smoke() {
        // Deterministic pseudo-random 3-SAT instances around the phase
        // transition; verify models when SAT.
        let mut seed = 0xdeadbeefu64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let n = 30;
            let m = 120;
            let mut s = SatSolver::new();
            let vars: Vec<usize> = (0..n).map(|_| s.new_var()).collect();
            let mut clauses = Vec::new();
            let mut ok = true;
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = vars[(rnd() % n as u64) as usize];
                    c.push(Lit::with_sign(v, rnd() % 2 == 0));
                }
                clauses.push(c.clone());
                if !s.add_clause(c) {
                    ok = false;
                    break;
                }
            }
            if ok && s.solve() == SatResult::Sat {
                check_model(&s, &clauses);
            }
        }
    }
}
