//! CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
//! analysis, VSIDS-style decision heuristic, phase saving, and Luby
//! restarts. Small and dependency-free; the DPLL(T) layer
//! ([`crate::solver`]) lazily adds theory lemmas as ordinary clauses.

/// A literal: variable index with polarity. `code = var << 1 | neg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of variable `v`.
    pub fn pos(v: usize) -> Lit {
        Lit((v as u32) << 1)
    }

    /// Negative literal of variable `v`.
    pub fn neg(v: usize) -> Lit {
        Lit(((v as u32) << 1) | 1)
    }

    /// Literal of variable `v` with the given `positive` polarity.
    pub fn with_sign(v: usize, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable index.
    pub fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// True iff the literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite literal.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_neg() {
            write!(f, "-x{}", self.var())
        } else {
            write!(f, "x{}", self.var())
        }
    }
}

/// Result of a SAT call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found (see [`SatSolver::model_value`]).
    Sat,
    /// No satisfying assignment exists.
    Unsat,
}

type ClauseRef = usize;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
}

/// Solver statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct SatStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of unit propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
}

/// A CDCL SAT solver.
#[derive(Debug, Default)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<ClauseRef>>, // indexed by literal code
    assign: Vec<Option<bool>>,    // indexed by var
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    unsat: bool,
    /// Statistics for the current lifetime of the solver.
    pub stats: SatStats,
}

impl SatSolver {
    /// Fresh solver with no variables.
    pub fn new() -> Self {
        SatSolver {
            var_inc: 1.0,
            ..SatSolver::default()
        }
    }

    /// Declare a new variable; returns its index.
    pub fn new_var(&mut self) -> usize {
        let v = self.assign.len();
        self.assign.push(None);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new()); // pos watch list
        self.watches.push(Vec::new()); // neg watch list
        v
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var()].map(|b| b != l.is_neg())
    }

    /// Add a clause. Returns `false` if the solver is already known UNSAT.
    /// Clauses may be added between `solve` calls (incremental use); the
    /// trail is rewound to level 0 first.
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) -> bool {
        if self.unsat {
            return false;
        }
        self.backtrack_to(0);
        lits.sort();
        lits.dedup();
        // Tautology?
        if lits.windows(2).any(|w| w[0] == w[1].negated()) {
            return true;
        }
        // Drop root-level-false literals; detect satisfied clauses.
        let mut filtered = Vec::with_capacity(lits.len());
        for l in lits {
            match self.value(l) {
                Some(true) => return true,
                Some(false) => {}
                None => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(filtered[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                let cref = self.clauses.len();
                self.watches[filtered[0].negated().code()].push(cref);
                self.watches[filtered[1].negated().code()].push(cref);
                self.clauses.push(Clause { lits: filtered });
                true
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert!(self.value(l).is_none());
        let v = l.var();
        self.assign[v] = Some(!l.is_neg());
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns a conflicting clause ref if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses watching ¬p must be visited: p just became true, so
            // the watcher list for literal p (code of p) holds clauses in
            // which one watched literal is ¬p... We store watches keyed by
            // the *falsified* literal: a clause watching literal l is in
            // watches[l.negated()]; when p becomes true, literals ¬p are
            // falsified, so visit watches[p.code()].
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            while i < ws.len() {
                let cref = ws[i];
                // Ensure the falsified literal is at position 1.
                let false_lit = p.negated();
                {
                    let c = &mut self.clauses[cref];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                }
                // First literal satisfied? keep watching.
                let first = self.clauses[cref].lits[0];
                if self.value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                let len = self.clauses[cref].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref].lits[k];
                    if self.value(lk) != Some(false) {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[lk.negated().code()].push(cref);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.value(first) == Some(false) {
                    // Conflict: restore remaining watches and report.
                    self.watches[p.code()].extend(ws.drain(..));
                    return Some(cref);
                }
                self.enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[p.code()].extend(ws.drain(..));
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay_activity(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns (learned clause, backjump level).
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let cur_level = self.trail_lim.len() as u32;
        let mut learned: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = conflict;
        let mut index = self.trail.len();
        loop {
            let start = usize::from(p.is_some());
            // Skip lits[0] when it is the asserting literal p itself.
            let lits: Vec<Lit> = self.clauses[cref].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if seen[v] || self.level[v] == 0 {
                    continue;
                }
                seen[v] = true;
                self.bump_var(v);
                if self.level[v] == cur_level {
                    counter += 1;
                } else {
                    learned.push(q);
                }
            }
            // Find next literal on the trail to resolve on.
            loop {
                index -= 1;
                if seen[self.trail[index].var()] {
                    break;
                }
            }
            let lit = self.trail[index];
            seen[lit.var()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            cref = self.reason[lit.var()].expect("non-decision must have a reason");
            p = Some(lit);
        }
        let asserting = p.unwrap().negated();
        learned.insert(0, asserting);
        let backjump = learned[1..]
            .iter()
            .map(|l| self.level[l.var()])
            .max()
            .unwrap_or(0);
        (learned, backjump)
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var();
                self.phase[v] = self.assign[v].unwrap();
                self.assign[v] = None;
                self.reason[v] = None;
            }
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<usize> = None;
        for v in 0..self.num_vars() {
            if self.assign[v].is_none()
                && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        best.map(|v| Lit::with_sign(v, self.phase[v]))
    }

    /// Solve the current clause set.
    pub fn solve(&mut self) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }
        let mut conflicts_since_restart = 0u64;
        let mut restart_idx = 1u64;
        let mut restart_limit = 64 * luby(restart_idx);
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                let (learned, backjump) = self.analyze(conflict);
                self.backtrack_to(backjump);
                self.decay_activity();
                if learned.len() == 1 {
                    self.enqueue(learned[0], None);
                } else {
                    let cref = self.clauses.len();
                    self.watches[learned[0].negated().code()].push(cref);
                    self.watches[learned[1].negated().code()].push(cref);
                    let asserting = learned[0];
                    self.clauses.push(Clause { lits: learned });
                    self.enqueue(asserting, Some(cref));
                }
            } else if conflicts_since_restart >= restart_limit {
                self.stats.restarts += 1;
                conflicts_since_restart = 0;
                restart_idx += 1;
                restart_limit = 64 * luby(restart_idx);
                self.backtrack_to(0);
            } else {
                match self.decide() {
                    None => return SatResult::Sat,
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, None);
                    }
                }
            }
        }
    }

    /// Value of variable `v` in the current model (valid after
    /// `solve() == Sat`).
    pub fn model_value(&self, v: usize) -> bool {
        self.assign[v].unwrap_or(false)
    }
}

/// The Luby restart sequence (1,1,2,1,1,2,4,…).
fn luby(mut i: u64) -> u64 {
    loop {
        // Find k with 2^k - 1 >= i
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_model(s: &SatSolver, clauses: &[Vec<Lit>]) {
        for c in clauses {
            assert!(
                c.iter().any(|l| s.model_value(l.var()) != l.is_neg()),
                "clause {c:?} not satisfied"
            );
        }
    }

    #[test]
    fn luby_sequence() {
        let seq: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn trivial_sat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert!(s.add_clause(vec![Lit::pos(a)]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(a));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert!(s.add_clause(vec![Lit::pos(a)]));
        assert!(!s.add_clause(vec![Lit::neg(a)]) || s.solve() == SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = SatSolver::new();
        let _ = s.new_var();
        assert!(!s.add_clause(vec![]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautology_ignored() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert!(s.add_clause(vec![Lit::pos(a), Lit::neg(a)]));
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = SatSolver::new();
        let vars: Vec<usize> = (0..10).map(|_| s.new_var()).collect();
        // x0 and (xi -> xi+1)
        assert!(s.add_clause(vec![Lit::pos(vars[0])]));
        for w in vars.windows(2) {
            assert!(s.add_clause(vec![Lit::neg(w[0]), Lit::pos(w[1])]));
        }
        assert_eq!(s.solve(), SatResult::Sat);
        for &v in &vars {
            assert!(s.model_value(v));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: p[i][j] = pigeon i in hole j.
        let mut s = SatSolver::new();
        let mut p = [[0usize; 2]; 3];
        for i in 0..3 {
            for j in 0..2 {
                p[i][j] = s.new_var();
            }
        }
        for i in 0..3 {
            assert!(s.add_clause(vec![Lit::pos(p[i][0]), Lit::pos(p[i][1])]));
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    assert!(s.add_clause(vec![Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]));
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn xor_chain_sat() {
        // (a xor b) and (b xor c) and a  =>  model a=1,b=0,c=1
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let clauses = vec![
            vec![Lit::pos(a), Lit::pos(b)],
            vec![Lit::neg(a), Lit::neg(b)],
            vec![Lit::pos(b), Lit::pos(c)],
            vec![Lit::neg(b), Lit::neg(c)],
            vec![Lit::pos(a)],
        ];
        for c in &clauses {
            assert!(s.add_clause(c.clone()));
        }
        assert_eq!(s.solve(), SatResult::Sat);
        check_model(&s, &clauses);
        assert!(s.model_value(a));
        assert!(!s.model_value(b));
        assert!(s.model_value(c));
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause(vec![Lit::pos(a), Lit::pos(b)]));
        assert_eq!(s.solve(), SatResult::Sat);
        // Block the found model, resolve; repeat until UNSAT. There are
        // exactly 3 models of (a or b).
        let mut models = 0;
        loop {
            let block: Vec<Lit> = [a, b]
                .iter()
                .map(|&v| Lit::with_sign(v, !s.model_value(v)))
                .collect();
            models += 1;
            if !s.add_clause(block) || s.solve() == SatResult::Unsat {
                break;
            }
            assert!(models <= 3, "too many models");
        }
        assert_eq!(models, 3);
    }

    #[test]
    fn random_3sat_smoke() {
        // Deterministic pseudo-random 3-SAT instances around the phase
        // transition; verify models when SAT.
        let mut seed = 0xdeadbeefu64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let n = 30;
            let m = 120;
            let mut s = SatSolver::new();
            let vars: Vec<usize> = (0..n).map(|_| s.new_var()).collect();
            let mut clauses = Vec::new();
            let mut ok = true;
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = vars[(rnd() % n as u64) as usize];
                    c.push(Lit::with_sign(v, rnd() % 2 == 0));
                }
                clauses.push(c.clone());
                if !s.add_clause(c) {
                    ok = false;
                    break;
                }
            }
            if ok && s.solve() == SatResult::Sat {
                check_model(&s, &clauses);
            }
        }
    }
}
