//! Linear terms and theory atoms.
//!
//! All arithmetic leaves of a formula are *atoms* comparing a linear term
//! with zero. Equality is expanded into a pair of `≤` atoms and
//! disequality into a pair of strict `<` atoms before solving, so the
//! theory layer only ever sees `≤ 0` / `< 0` bounds — exactly what the
//! simplex core consumes — plus integer divisibility constraints produced
//! by Cooper elimination.

use crate::var::VarId;
use sia_num::{BigInt, BigRat};
use std::collections::BTreeMap;
use std::fmt;

/// A linear term `Σ coeffᵢ·varᵢ + constant` over exact rationals.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LinTerm {
    coeffs: BTreeMap<VarId, BigRat>,
    constant: BigRat,
}

impl LinTerm {
    /// The zero term.
    pub fn zero() -> Self {
        LinTerm::default()
    }

    /// A constant term.
    pub fn constant(c: BigRat) -> Self {
        LinTerm {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    /// The term `1·v`.
    pub fn var(v: VarId) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, BigRat::one());
        LinTerm {
            coeffs,
            constant: BigRat::zero(),
        }
    }

    /// Build from raw parts, dropping zero coefficients.
    pub fn from_parts(coeffs: impl IntoIterator<Item = (VarId, BigRat)>, constant: BigRat) -> Self {
        let mut t = LinTerm::constant(constant);
        for (v, k) in coeffs {
            t.add_coeff(v, &k);
        }
        t
    }

    /// The constant component.
    pub fn constant_term(&self) -> &BigRat {
        &self.constant
    }

    /// Coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: VarId) -> BigRat {
        self.coeffs.get(&v).cloned().unwrap_or_else(BigRat::zero)
    }

    /// Iterate `(var, coeff)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &BigRat)> {
        self.coeffs.iter().map(|(v, k)| (*v, k))
    }

    /// Variables with non-zero coefficients.
    pub fn vars(&self) -> Vec<VarId> {
        self.coeffs.keys().copied().collect()
    }

    /// True iff the term mentions `v`.
    pub fn mentions(&self, v: VarId) -> bool {
        self.coeffs.contains_key(&v)
    }

    /// True iff the term has no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.coeffs.len()
    }

    fn add_coeff(&mut self, v: VarId, k: &BigRat) {
        if k.is_zero() {
            return;
        }
        match self.coeffs.get_mut(&v) {
            Some(c) => {
                *c += k;
                if c.is_zero() {
                    self.coeffs.remove(&v);
                }
            }
            None => {
                self.coeffs.insert(v, k.clone());
            }
        }
    }

    /// `self + other`
    pub fn add(&self, other: &LinTerm) -> LinTerm {
        let mut out = self.clone();
        out.constant += &other.constant;
        for (v, k) in &other.coeffs {
            out.add_coeff(*v, k);
        }
        out
    }

    /// `self - other`
    pub fn sub(&self, other: &LinTerm) -> LinTerm {
        self.add(&other.scale(&-BigRat::one()))
    }

    /// `k·self`
    pub fn scale(&self, k: &BigRat) -> LinTerm {
        if k.is_zero() {
            return LinTerm::zero();
        }
        LinTerm {
            coeffs: self.coeffs.iter().map(|(v, c)| (*v, c * k)).collect(),
            constant: &self.constant * k,
        }
    }

    /// Negated term.
    pub fn negated(&self) -> LinTerm {
        self.scale(&-BigRat::one())
    }

    /// Replace `v` with `replacement` (used by quantifier elimination).
    pub fn subst(&self, v: VarId, replacement: &LinTerm) -> LinTerm {
        let k = self.coeff(v);
        if k.is_zero() {
            return self.clone();
        }
        let mut out = self.clone();
        out.coeffs.remove(&v);
        out.add(&replacement.scale(&k))
    }

    /// Evaluate under an assignment of rationals to variables.
    pub fn eval(&self, get: &impl Fn(VarId) -> BigRat) -> BigRat {
        let mut acc = self.constant.clone();
        for (v, k) in &self.coeffs {
            acc += &(k * &get(*v));
        }
        acc
    }

    /// Scale so all coefficients and the constant become integers with
    /// gcd 1; returns the scaled term. The scale factor is always positive,
    /// so comparisons with zero are preserved.
    pub fn normalize_integer(&self) -> LinTerm {
        let mut l = self.constant.denom().clone();
        for k in self.coeffs.values() {
            l = l.lcm(k.denom());
        }
        let scaled = self.scale(&BigRat::from_int(l));
        let mut g = scaled.constant.numer().abs();
        for k in scaled.coeffs.values() {
            g = g.gcd(k.numer());
        }
        if g.is_zero() || g.is_one() {
            return scaled;
        }
        scaled.scale(&BigRat::new(BigInt::one(), g))
    }

    /// The variable-part only (constant dropped).
    pub fn without_constant(&self) -> LinTerm {
        LinTerm {
            coeffs: self.coeffs.clone(),
            constant: BigRat::zero(),
        }
    }
}

impl fmt::Display for LinTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, k) in &self.coeffs {
            if first {
                write!(f, "{k}*{v}")?;
                first = false;
            } else if k.is_negative() {
                write!(f, " - {}*{v}", k.abs())?;
            } else {
                write!(f, " + {k}*{v}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)
        } else if self.constant.is_negative() {
            write!(f, " - {}", self.constant.abs())
        } else if !self.constant.is_zero() {
            write!(f, " + {}", self.constant)
        } else {
            Ok(())
        }
    }
}

/// Relation of an atom against zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `term ≤ 0`
    Le,
    /// `term < 0`
    Lt,
}

/// A theory atom: `term ⋈ 0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The relation.
    pub rel: Rel,
    /// The linear term compared against zero.
    pub term: LinTerm,
}

impl Atom {
    /// `term ≤ 0`
    pub fn le(term: LinTerm) -> Self {
        Atom { rel: Rel::Le, term }
    }

    /// `term < 0`
    pub fn lt(term: LinTerm) -> Self {
        Atom { rel: Rel::Lt, term }
    }

    /// The logical negation: `¬(t ≤ 0) = (-t < 0)`, `¬(t < 0) = (-t ≤ 0)`.
    pub fn negated(&self) -> Atom {
        match self.rel {
            Rel::Le => Atom::lt(self.term.negated()),
            Rel::Lt => Atom::le(self.term.negated()),
        }
    }

    /// Evaluate under a rational assignment.
    pub fn eval(&self, get: &impl Fn(VarId) -> BigRat) -> bool {
        let v = self.term.eval(get);
        match self.rel {
            Rel::Le => !v.is_positive(),
            Rel::Lt => v.is_negative(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.rel {
            Rel::Le => "<=",
            Rel::Lt => "<",
        };
        write!(f, "{} {op} 0", self.term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: i64, d: i64) -> BigRat {
        BigRat::new(BigInt::from(n), BigInt::from(d))
    }

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn term_algebra() {
        let a = LinTerm::var(v(0)).scale(&q(2, 1));
        let b = LinTerm::var(v(1));
        let t = a.add(&b).add(&LinTerm::constant(q(5, 1)));
        assert_eq!(t.coeff(v(0)), q(2, 1));
        assert_eq!(t.coeff(v(1)), q(1, 1));
        assert_eq!(t.constant_term(), &q(5, 1));
        let u = t.sub(&LinTerm::var(v(1)));
        assert!(!u.mentions(v(1)));
        assert_eq!(u.num_vars(), 1);
    }

    #[test]
    fn cancellation_drops_vars() {
        let t = LinTerm::var(v(0)).sub(&LinTerm::var(v(0)));
        assert!(t.is_constant());
        assert!(t.constant_term().is_zero());
    }

    #[test]
    fn substitution() {
        // t = 2x + y + 1; x := y - 3  →  2y - 6 + y + 1 = 3y - 5
        let t = LinTerm::from_parts(vec![(v(0), q(2, 1)), (v(1), q(1, 1))], q(1, 1));
        let r = LinTerm::from_parts(vec![(v(1), q(1, 1))], q(-3, 1));
        let s = t.subst(v(0), &r);
        assert_eq!(s.coeff(v(1)), q(3, 1));
        assert_eq!(s.constant_term(), &q(-5, 1));
        // substituting an absent var is a no-op
        assert_eq!(t.subst(v(5), &r), t);
    }

    #[test]
    fn eval() {
        let t = LinTerm::from_parts(vec![(v(0), q(1, 2))], q(1, 1));
        let r = t.eval(&|_| q(3, 1));
        assert_eq!(r, q(5, 2));
    }

    #[test]
    fn normalize_integer() {
        // x/2 + y/3 + 1/6  →  3x + 2y + 1
        let t = LinTerm::from_parts(vec![(v(0), q(1, 2)), (v(1), q(1, 3))], q(1, 6));
        let n = t.normalize_integer();
        assert_eq!(n.coeff(v(0)), q(3, 1));
        assert_eq!(n.coeff(v(1)), q(2, 1));
        assert_eq!(n.constant_term(), &q(1, 1));
        // 4x + 6  →  2x + 3
        let t2 = LinTerm::from_parts(vec![(v(0), q(4, 1))], q(6, 1));
        let n2 = t2.normalize_integer();
        assert_eq!(n2.coeff(v(0)), q(2, 1));
        assert_eq!(n2.constant_term(), &q(3, 1));
    }

    #[test]
    fn atom_negation() {
        let t = LinTerm::from_parts(vec![(v(0), q(1, 1))], q(-5, 1)); // x - 5
        let a = Atom::le(t.clone()); // x <= 5
        let n = a.negated(); // x > 5  i.e.  5 - x < 0
        assert_eq!(n.rel, Rel::Lt);
        assert_eq!(n.term.coeff(v(0)), q(-1, 1));
        // evaluation agrees
        let at6 = |_: VarId| q(6, 1);
        let at5 = |_: VarId| q(5, 1);
        assert!(!a.eval(&at6));
        assert!(n.eval(&at6));
        assert!(a.eval(&at5));
        assert!(!n.eval(&at5));
    }

    #[test]
    fn display() {
        let t = LinTerm::from_parts(vec![(v(0), q(2, 1)), (v(1), q(-1, 1))], q(-7, 1));
        assert_eq!(t.to_string(), "2*v0 - 1*v1 - 7");
        assert_eq!(Atom::lt(t).to_string(), "2*v0 - 1*v1 - 7 < 0");
        assert_eq!(LinTerm::zero().to_string(), "0");
    }
}
