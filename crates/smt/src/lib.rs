//! A from-scratch SMT solver for linear integer/real arithmetic, built for
//! Sia's predicate synthesis loop (replacing Z3 in the paper's stack).
//!
//! Components:
//!
//! * [`sat`] — CDCL SAT core (watched literals, 1UIP learning, VSIDS,
//!   Luby restarts);
//! * [`simplex`] — Dutertre–de Moura general simplex over exact rationals
//!   with delta-rational strict bounds;
//! * [`solver`] — the lazy DPLL(T) integration plus integer
//!   branch-and-bound and divisibility lowering: the public
//!   [`Solver`] façade;
//! * [`qe`] — Cooper's quantifier-elimination procedure for the
//!   `∃cols′. … ∧ ∀others. ¬p` formulas Sia uses to generate FALSE
//!   samples and decide optimality (§4.2, §5.3, §5.5), and a model-based
//!   CEGQI alternative used for ablation;
//! * [`audit`] — a sampling soundness auditor for quantifier elimination,
//!   run on every elimination under the `checked` cargo feature;
//! * [`budget`] — cooperative cancellation: a cloneable deadline/cancel
//!   token ([`Budget`]) polled by the CDCL, simplex, DPLL(T), and
//!   branch-and-bound loops so a caller-imposed time limit turns into an
//!   `Unknown` verdict instead of a wedged solve.
//!
//! Formulas ([`Formula`]) are built over linear terms ([`LinTerm`]) with
//! variables declared on the solver.

#![warn(missing_docs)]

pub mod audit;
pub mod budget;
pub mod formula;
pub mod qe;
pub mod sat;
pub mod simplex;
pub mod solver;
pub mod term;
pub mod var;

pub use budget::Budget;
pub use formula::Formula;
pub use qe::{eliminate_exists, QeConfig, QeError};
pub use solver::{Model, SmtResult, Solver, SolverConfig, SolverStats};
pub use term::{Atom, LinTerm, Rel};
pub use var::{Sort, VarId, VarTable};
