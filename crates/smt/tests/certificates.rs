//! End-to-end certificate tests: every Unsat verdict's certificate must
//! pass the independent checker, and deliberately corrupted certificates
//! (an injected soundness bug) must be rejected.

use sia_check::{check_refutation, CertifiedUnsat, CheckError, Justification, ProofStep};
use sia_num::BigRat;
use sia_rand::{Rng, SeedableRng};
use sia_smt::{Formula, LinTerm, SmtResult, Solver, Sort, VarId};

fn atom(ax: i64, ay: i64, c: i64, strict: bool, x: VarId, y: VarId) -> Formula {
    let t = LinTerm::var(x)
        .scale(&BigRat::from(ax))
        .add(&LinTerm::var(y).scale(&BigRat::from(ay)))
        .add(&LinTerm::constant(BigRat::from(c)));
    if strict {
        Formula::lt0(t)
    } else {
        Formula::le0(t)
    }
}

/// A directly contradictory conjunction certifies with a Farkas lemma.
#[test]
fn unsat_conjunction_certificate_verifies() {
    let mut s = Solver::new();
    let x = s.declare("x", Sort::Real);
    // x ≥ 2 ∧ x ≤ 1.
    let f = Formula::le0(LinTerm::constant(BigRat::from(2)).sub(&LinTerm::var(x))).and(
        Formula::le0(LinTerm::var(x).sub(&LinTerm::constant(BigRat::from(1)))),
    );
    let (result, cert) = s.check_with_certificate(&f);
    assert!(result.is_unsat());
    let cert = cert.expect("unsat verdict must carry a certificate");
    let report = check_refutation(&cert).expect("certificate must verify");
    assert!(report.inputs >= 1);
    assert!(report.derived >= 1, "must at least derive the empty clause");
    assert!(
        report.farkas_lemmas >= 1,
        "rational conflict needs a Farkas lemma"
    );
}

/// Sat verdicts carry no certificate (the model itself is the witness,
/// and it is replay-validated inside `check`).
#[test]
fn sat_verdict_has_no_certificate() {
    let mut s = Solver::new();
    let x = s.declare("x", Sort::Int);
    let f = Formula::le0(LinTerm::var(x).sub(&LinTerm::constant(BigRat::from(3))));
    let (result, cert) = s.check_with_certificate(&f);
    assert!(matches!(result, SmtResult::Sat(_)));
    assert!(cert.is_none());
}

/// Collect certificates from random unsat disjunctive formulas. These
/// exercise conflict analysis, so the logs contain nonempty learned
/// clauses and Farkas lemmas to corrupt.
fn harvest_certificates() -> Vec<CertifiedUnsat> {
    let mut g = sia_rand::rngs::StdRng::seed_from_u64(0xce47_0001);
    let mut certs = Vec::new();
    while certs.len() < 12 {
        let mut s = Solver::new();
        let x = s.declare("x", Sort::Int);
        let y = s.declare("y", Sort::Int);
        let mut f = Formula::True;
        for _ in 0..g.gen_range(2usize..5) {
            let a = atom(
                g.gen_range(-3i64..=3),
                g.gen_range(-3i64..=3),
                g.gen_range(-8i64..=8),
                g.gen_bool_fair(),
                x,
                y,
            );
            let b = atom(
                g.gen_range(-3i64..=3),
                g.gen_range(-3i64..=3),
                g.gen_range(-8i64..=8),
                g.gen_bool_fair(),
                x,
                y,
            );
            f = f.and(a.or(b));
        }
        let (result, cert) = s.check_with_certificate(&f);
        if let Some(cert) = cert {
            assert!(result.is_unsat());
            check_refutation(&cert).expect("fresh certificate must verify");
            certs.push(cert);
        }
    }
    certs
}

/// The injected soundness bug: flip one literal of a learned clause. The
/// independent checker must reject the tampered certificate.
#[test]
fn flipped_learned_literal_is_caught() {
    let mut tampered_total = 0usize;
    let mut rejected = 0usize;
    let mut saw_not_rup = false;
    for cert in harvest_certificates() {
        let Some(pos) = cert
            .steps
            .iter()
            .position(|s| matches!(s, ProofStep::Derived(c) if !c.is_empty()))
        else {
            continue;
        };
        let mut bad = cert.clone();
        if let ProofStep::Derived(c) = &mut bad.steps[pos] {
            c[0] = -c[0];
        }
        tampered_total += 1;
        if let Err(e) = check_refutation(&bad) {
            rejected += 1;
            if matches!(e, CheckError::NotRup { .. }) {
                saw_not_rup = true;
            }
        }
    }
    assert!(
        tampered_total >= 1,
        "no certificate had a nonempty learned clause"
    );
    assert_eq!(
        rejected, tampered_total,
        "a tampered certificate slipped past the checker"
    );
    assert!(saw_not_rup, "expected at least one NotRup rejection");
}

/// Corrupting a Farkas multiplier (sign flip or zero) must be rejected.
#[test]
fn corrupted_farkas_multiplier_is_caught() {
    let mut tampered_total = 0usize;
    for cert in harvest_certificates() {
        let Some(pos) = cert
            .steps
            .iter()
            .position(|s| matches!(s, ProofStep::Lemma(_, Justification::Farkas(_))))
        else {
            continue;
        };
        for corrupt in [true, false] {
            let mut bad = cert.clone();
            if let ProofStep::Lemma(_, Justification::Farkas(fc)) = &mut bad.steps[pos] {
                if corrupt {
                    fc.terms[0].1 = -fc.terms[0].1.clone();
                } else {
                    fc.terms[0].1 = BigRat::zero();
                }
            }
            tampered_total += 1;
            assert!(
                check_refutation(&bad).is_err(),
                "corrupted multiplier accepted"
            );
        }
    }
    assert!(tampered_total >= 1, "no certificate had a Farkas lemma");
}

/// Removing an atom-table entry referenced by a Farkas certificate must
/// be rejected as an unknown atom.
#[test]
fn missing_atom_entry_is_caught() {
    let mut tampered_total = 0usize;
    for cert in harvest_certificates() {
        let Some(lit) = cert.steps.iter().find_map(|s| match s {
            ProofStep::Lemma(_, Justification::Farkas(fc)) => Some(fc.terms[0].0),
            _ => None,
        }) else {
            continue;
        };
        let mut bad = cert.clone();
        bad.atoms.entries.remove(&lit);
        tampered_total += 1;
        assert!(
            matches!(check_refutation(&bad), Err(CheckError::UnknownAtom { .. })),
            "missing atom entry accepted"
        );
    }
    assert!(tampered_total >= 1, "no certificate had a Farkas lemma");
}

/// With the collector on, every certified `Unsat` verdict flows into the
/// `check.*` metrics: certificates verified, RUP steps replayed, Farkas
/// multipliers validated.
#[cfg(feature = "checked")]
#[test]
fn checked_solving_emits_check_metrics() {
    let mut s = Solver::new();
    let x = s.declare("x", Sort::Real);
    // x ≥ 2 ∧ x ≤ 1 — a rational conflict, so a Farkas lemma is certain.
    let f = Formula::le0(LinTerm::constant(BigRat::from(2)).sub(&LinTerm::var(x))).and(
        Formula::le0(LinTerm::var(x).sub(&LinTerm::constant(BigRat::from(1)))),
    );
    sia_obs::enable();
    assert!(s.check(&f).is_unsat());
    sia_obs::disable();
    let counter = |name: &str| {
        sia_obs::snapshot()
            .counters
            .iter()
            .find(|(k, _)| k.name() == name)
            .map_or(0, |(_, v)| *v)
    };
    assert!(counter("check.certificates") >= 1, "no certificate counted");
    assert!(counter("check.rup_steps") >= 1, "no RUP steps counted");
    assert!(
        counter("check.farkas_lemmas") >= 1,
        "no Farkas lemma counted"
    );
    let snap = sia_obs::snapshot();
    assert!(
        snap.span("check.verify").is_some() || snap.span("smt.check/check.verify").is_some(),
        "certificate verification span missing"
    );
}
