//! Differential testing of the full SMT stack against brute-force grid
//! enumeration on small integer domains, driven by a seeded deterministic
//! generator.

use sia_num::BigRat;
use sia_rand::{Rng, SeedableRng};
use sia_smt::{eliminate_exists, Formula, LinTerm, QeConfig, SmtResult, Solver, Sort, VarId};

/// A random atom over two variables with small coefficients, bounded so
/// the grid check stays conclusive.
#[derive(Debug, Clone)]
struct RawAtom {
    ax: i64,
    ay: i64,
    c: i64,
    strict: bool,
}

fn rand_atom(g: &mut sia_rand::rngs::StdRng) -> RawAtom {
    RawAtom {
        ax: g.gen_range(-3i64..=3),
        ay: g.gen_range(-3i64..=3),
        c: g.gen_range(-12i64..=12),
        strict: g.gen_bool_fair(),
    }
}

fn rand_atoms(g: &mut sia_rand::rngs::StdRng, lo: usize, hi: usize) -> Vec<RawAtom> {
    let n = g.gen_range(lo..hi);
    (0..n).map(|_| rand_atom(g)).collect()
}

fn to_formula(a: &RawAtom, x: VarId, y: VarId) -> Formula {
    let t = LinTerm::var(x)
        .scale(&BigRat::from(a.ax))
        .add(&LinTerm::var(y).scale(&BigRat::from(a.ay)))
        .add(&LinTerm::constant(BigRat::from(a.c)));
    if a.strict {
        Formula::lt0(t)
    } else {
        Formula::le0(t)
    }
}

fn holds(a: &RawAtom, x: i64, y: i64) -> bool {
    let v = a.ax * x + a.ay * y + a.c;
    if a.strict {
        v < 0
    } else {
        v <= 0
    }
}

/// Box both variables so the problem is finite and grid-checkable.
fn boxed(x: VarId, y: VarId, r: i64) -> Formula {
    let bound = |v: VarId| {
        Formula::le0(LinTerm::var(v).sub(&LinTerm::constant(BigRat::from(r)))).and(Formula::le0(
            LinTerm::constant(BigRat::from(-r)).sub(&LinTerm::var(v)),
        ))
    };
    bound(x).and(bound(y))
}

const R: i64 = 10;

/// Solver verdicts on random conjunctions match grid enumeration.
#[test]
fn conjunction_matches_grid() {
    let mut g = sia_rand::rngs::StdRng::seed_from_u64(0xd1ff_0001);
    for _ in 0..64 {
        let atoms = rand_atoms(&mut g, 1, 5);
        let mut s = Solver::new();
        let x = s.declare("x", Sort::Int);
        let y = s.declare("y", Sort::Int);
        let f = atoms
            .iter()
            .fold(boxed(x, y, R), |acc, a| acc.and(to_formula(a, x, y)));
        let grid_sat = (-R..=R).any(|gx| (-R..=R).any(|gy| atoms.iter().all(|a| holds(a, gx, gy))));
        match s.check(&f) {
            SmtResult::Sat(m) => {
                let (mx, my) = (m.int(x).to_i64().unwrap(), m.int(y).to_i64().unwrap());
                assert!(grid_sat, "solver sat at ({mx},{my}) but grid unsat");
                assert!(
                    atoms.iter().all(|a| holds(a, mx, my)),
                    "model ({mx},{my}) violates an atom"
                );
                assert!((-R..=R).contains(&mx) && (-R..=R).contains(&my));
            }
            SmtResult::Unsat => assert!(!grid_sat, "solver unsat but grid sat"),
            SmtResult::Unknown => {}
        }
    }
}

/// QE of one variable agrees with per-point grid satisfiability.
#[test]
fn elimination_matches_grid() {
    let mut g = sia_rand::rngs::StdRng::seed_from_u64(0xd1ff_0002);
    for _ in 0..64 {
        let atoms = rand_atoms(&mut g, 1, 4);
        let mut s = Solver::new();
        let x = s.declare("x", Sort::Int);
        let y = s.declare("y", Sort::Int);
        let f = atoms
            .iter()
            .fold(boxed(x, y, R), |acc, a| acc.and(to_formula(a, x, y)));
        let Ok(projected) = eliminate_exists(&f, &[y], &QeConfig::default()) else {
            continue; // budget: fine
        };
        for gx in -R..=R {
            let expect = (-R..=R).any(|gy| atoms.iter().all(|a| holds(a, gx, gy)));
            let pt = projected.subst(x, &LinTerm::constant(BigRat::from(gx)));
            let actual = match &pt {
                Formula::True => true,
                Formula::False => false,
                pt if pt.vars().is_empty() => pt.eval(&|_| BigRat::zero(), &|_| false),
                _ => {
                    // Residual divisibility witnesses: decide with the solver.
                    matches!(s.check(&pt), SmtResult::Sat(_))
                }
            };
            assert_eq!(actual, expect, "projection wrong at x = {gx}");
        }
    }
}

/// Disjunctions exercise the boolean layer: (A ∧ box) ∨ (B ∧ box).
#[test]
fn disjunction_matches_grid() {
    let mut g = sia_rand::rngs::StdRng::seed_from_u64(0xd1ff_0003);
    for _ in 0..64 {
        let a = rand_atoms(&mut g, 1, 3);
        let b = rand_atoms(&mut g, 1, 3);
        let mut s = Solver::new();
        let x = s.declare("x", Sort::Int);
        let y = s.declare("y", Sort::Int);
        let fa = a
            .iter()
            .fold(Formula::True, |acc, t| acc.and(to_formula(t, x, y)));
        let fb = b
            .iter()
            .fold(Formula::True, |acc, t| acc.and(to_formula(t, x, y)));
        let f = boxed(x, y, R).and(fa.or(fb));
        let grid_sat = (-R..=R).any(|gx| {
            (-R..=R)
                .any(|gy| a.iter().all(|t| holds(t, gx, gy)) || b.iter().all(|t| holds(t, gx, gy)))
        });
        match s.check(&f) {
            SmtResult::Sat(_) => assert!(grid_sat),
            SmtResult::Unsat => assert!(!grid_sat),
            SmtResult::Unknown => {}
        }
    }
}
