//! Brute-force cross-check of Cooper's quantifier elimination on small
//! bounded integer domains, including divisibility atoms, which exercise
//! the modulus (periodicity) machinery that plain inequalities never
//! touch. Boxing both variables keeps grid enumeration exhaustive, so the
//! check is conclusive in both directions.

use sia_num::{BigInt, BigRat};
use sia_rand::{Rng, SeedableRng};
use sia_smt::{eliminate_exists, Formula, LinTerm, QeConfig, SmtResult, Solver, Sort, VarId};

#[derive(Debug, Clone)]
enum RawAtom {
    Ineq {
        ax: i64,
        ay: i64,
        c: i64,
        strict: bool,
    },
    Div {
        m: i64,
        ax: i64,
        ay: i64,
        c: i64,
        neg: bool,
    },
}

fn rand_atom(g: &mut sia_rand::rngs::StdRng) -> RawAtom {
    if g.gen_bool(0.4) {
        RawAtom::Div {
            m: g.gen_range(2i64..=4),
            ax: g.gen_range(-2i64..=2),
            ay: g.gen_range(-2i64..=2),
            c: g.gen_range(-3i64..=3),
            neg: g.gen_bool_fair(),
        }
    } else {
        RawAtom::Ineq {
            ax: g.gen_range(-3i64..=3),
            ay: g.gen_range(-3i64..=3),
            c: g.gen_range(-10i64..=10),
            strict: g.gen_bool_fair(),
        }
    }
}

fn lin(ax: i64, ay: i64, c: i64, x: VarId, y: VarId) -> LinTerm {
    LinTerm::var(x)
        .scale(&BigRat::from(ax))
        .add(&LinTerm::var(y).scale(&BigRat::from(ay)))
        .add(&LinTerm::constant(BigRat::from(c)))
}

fn to_formula(a: &RawAtom, x: VarId, y: VarId) -> Formula {
    match a {
        RawAtom::Ineq { ax, ay, c, strict } => {
            let t = lin(*ax, *ay, *c, x, y);
            if *strict {
                Formula::lt0(t)
            } else {
                Formula::le0(t)
            }
        }
        RawAtom::Div { m, ax, ay, c, neg } => {
            let d = Formula::divides(BigInt::from(*m), lin(*ax, *ay, *c, x, y));
            if *neg {
                d.not()
            } else {
                d
            }
        }
    }
}

fn holds(a: &RawAtom, x: i64, y: i64) -> bool {
    match a {
        RawAtom::Ineq { ax, ay, c, strict } => {
            let v = ax * x + ay * y + c;
            if *strict {
                v < 0
            } else {
                v <= 0
            }
        }
        RawAtom::Div { m, ax, ay, c, neg } => {
            let v = ax * x + ay * y + c;
            (v.rem_euclid(*m) == 0) != *neg
        }
    }
}

fn boxed(x: VarId, y: VarId, r: i64) -> Formula {
    let bound = |v: VarId| {
        Formula::le0(LinTerm::var(v).sub(&LinTerm::constant(BigRat::from(r)))).and(Formula::le0(
            LinTerm::constant(BigRat::from(-r)).sub(&LinTerm::var(v)),
        ))
    };
    bound(x).and(bound(y))
}

const R: i64 = 8;

/// Decide a projected formula at a concrete point for `x`, falling back
/// to the solver when residual divisibility witnesses remain.
fn projected_at(s: &mut Solver, projected: &Formula, x: VarId, gx: i64) -> bool {
    let pt = projected.subst(x, &LinTerm::constant(BigRat::from(gx)));
    match &pt {
        Formula::True => true,
        Formula::False => false,
        pt if pt.vars().is_empty() => pt.eval(&|_| BigRat::zero(), &|_| false),
        _ => matches!(s.check(&pt), SmtResult::Sat(_)),
    }
}

/// Eliminating one variable from random mixtures of inequalities and
/// (negated) divisibility atoms matches exhaustive grid enumeration.
#[test]
fn divisibility_elimination_matches_grid() {
    let mut g = sia_rand::rngs::StdRng::seed_from_u64(0xc00b_e001);
    for round in 0..48 {
        let n = g.gen_range(1usize..4);
        let atoms: Vec<RawAtom> = (0..n).map(|_| rand_atom(&mut g)).collect();
        let mut s = Solver::new();
        let x = s.declare("x", Sort::Int);
        let y = s.declare("y", Sort::Int);
        let f = atoms
            .iter()
            .fold(boxed(x, y, R), |acc, a| acc.and(to_formula(a, x, y)));
        let Ok(projected) = eliminate_exists(&f, &[y], &QeConfig::default()) else {
            continue; // budget exhausted: acceptable, not a soundness issue
        };
        for gx in -R..=R {
            let expect = (-R..=R).any(|gy| atoms.iter().all(|a| holds(a, gx, gy)));
            let actual = projected_at(&mut s, &projected, x, gx);
            assert_eq!(
                actual, expect,
                "round {round}: projection of {atoms:?} wrong at x = {gx}"
            );
        }
    }
}

/// Eliminating both variables yields a ground truth value that matches
/// whole-grid satisfiability.
#[test]
fn full_elimination_matches_grid() {
    let mut g = sia_rand::rngs::StdRng::seed_from_u64(0xc00b_e002);
    for round in 0..48 {
        let n = g.gen_range(1usize..4);
        let atoms: Vec<RawAtom> = (0..n).map(|_| rand_atom(&mut g)).collect();
        let mut s = Solver::new();
        let x = s.declare("x", Sort::Int);
        let y = s.declare("y", Sort::Int);
        let f = atoms
            .iter()
            .fold(boxed(x, y, R), |acc, a| acc.and(to_formula(a, x, y)));
        let Ok(projected) = eliminate_exists(&f, &[x, y], &QeConfig::default()) else {
            continue;
        };
        let expect = (-R..=R).any(|gx| (-R..=R).any(|gy| atoms.iter().all(|a| holds(a, gx, gy))));
        let actual = match &projected {
            Formula::True => true,
            Formula::False => false,
            pt if pt.vars().is_empty() => pt.eval(&|_| BigRat::zero(), &|_| false),
            pt => matches!(s.check(pt), SmtResult::Sat(_)),
        };
        assert_eq!(
            actual, expect,
            "round {round}: ground projection of {atoms:?} wrong"
        );
    }
}
