//! Regression tests for cooperative interruption: an exhausted or
//! cancelled budget must surface as `Unknown`/`Interrupted`, never as a
//! definitive verdict. A cancelled solve that reported `Unsat` would
//! poison every caller that treats `Unsat` as proof (the CEGIS
//! feasibility pre-check, the verifier, the `checked` cross-checks).

use sia_num::BigRat;
use sia_smt::sat::{Lit, SatResult, SatSolver};
use sia_smt::{Budget, Formula, LinTerm, SmtResult, Solver, Sort};

/// A pigeonhole CNF (`pigeons` into `pigeons - 1` holes): unsatisfiable,
/// and far beyond the solver's 512-step cancellation poll interval.
fn pigeonhole(sat: &mut SatSolver, pigeons: usize) -> bool {
    let holes = pigeons - 1;
    let var = |p: usize, h: usize| p * holes + h;
    for _ in 0..pigeons * holes {
        sat.new_var();
    }
    let mut ok = true;
    for p in 0..pigeons {
        ok &= sat.add_clause((0..holes).map(|h| Lit::pos(var(p, h))).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                ok &= sat.add_clause(vec![Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
            }
        }
    }
    ok
}

#[test]
fn cancelled_sat_solve_is_interrupted_not_unsat() {
    let mut sat = SatSolver::new();
    assert!(pigeonhole(&mut sat, 8), "no clause is trivially false");
    let budget = Budget::cancellable();
    budget.cancel();
    sat.budget = budget;
    assert_eq!(sat.solve(), SatResult::Interrupted);
    // The same instance with an unlimited budget really is unsat,
    // proving the cancelled verdict above withheld a real answer.
    sat.budget = Budget::unlimited();
    assert_eq!(sat.solve(), SatResult::Unsat);
}

#[test]
fn cancelled_smt_check_is_unknown_not_unsat() {
    // x >= 1 AND x <= 0: unsat, but a cancelled budget must say Unknown.
    let mut s = Solver::new();
    let x = s.declare("x", Sort::Int);
    let f = Formula::le0(LinTerm::constant(BigRat::from(1)).sub(&LinTerm::var(x)))
        .and(Formula::le0(LinTerm::var(x)));
    let budget = Budget::cancellable();
    budget.cancel();
    s.budget = budget;
    assert!(matches!(s.check(&f), SmtResult::Unknown));
    // And a satisfiable formula must not come back Sat either.
    let g = Formula::le0(LinTerm::var(x));
    assert!(matches!(s.check(&g), SmtResult::Unknown));
    // Restoring the budget restores the real verdicts.
    s.budget = Budget::unlimited();
    assert!(matches!(s.check(&g), SmtResult::Sat(_)));
    assert!(matches!(s.check(&f), SmtResult::Unsat));
}
