//! Sign-magnitude arbitrary-precision integers.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// An arbitrary-precision signed integer.
///
/// Stored as a sign plus little-endian `u32` limbs. Invariants:
/// * `limbs` has no trailing zero limb,
/// * `sign == 0` iff `limbs` is empty.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigInt {
    sign: i8,
    limbs: Vec<u32>,
}

impl BigInt {
    /// The integer zero.
    pub fn zero() -> Self {
        BigInt::default()
    }

    /// The integer one.
    pub fn one() -> Self {
        BigInt::from(1i64)
    }

    /// True iff `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.sign == 0
    }

    /// True iff `self == 1`.
    pub fn is_one(&self) -> bool {
        self.sign == 1 && self.limbs == [1]
    }

    /// True iff `self > 0`.
    pub fn is_positive(&self) -> bool {
        self.sign > 0
    }

    /// True iff `self < 0`.
    pub fn is_negative(&self) -> bool {
        self.sign < 0
    }

    /// Sign of the value: -1, 0, or 1.
    pub fn signum(&self) -> i8 {
        self.sign
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: self.sign.abs(),
            limbs: self.limbs.clone(),
        }
    }

    /// True iff the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l % 2 == 0)
    }

    fn from_limbs(sign: i8, mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        let sign = if limbs.is_empty() { 0 } else { sign };
        BigInt { sign, limbs }
    }

    /// Magnitude comparison (ignores sign).
    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let s = l as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// Subtract magnitudes; requires `a >= b`.
    fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i64;
        for (i, &x) in a.iter().enumerate() {
            let d = x as i64 - *b.get(i).unwrap_or(&0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        out
    }

    fn mul_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let mut carry = 0u64;
            for (j, &y) in b.iter().enumerate() {
                let t = out[i + j] as u64 + x as u64 * y as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        out
    }

    /// Divide magnitude by a single `u32`, returning (quotient, remainder).
    fn divmod_small(a: &[u32], d: u32) -> (Vec<u32>, u32) {
        debug_assert!(d != 0);
        let mut q = vec![0u32; a.len()];
        let mut rem = 0u64;
        for i in (0..a.len()).rev() {
            let cur = (rem << 32) | a[i] as u64;
            q[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        (q, rem as u32)
    }

    /// Long division on magnitudes: returns (quotient, remainder) with
    /// `a = q*b + r`, `0 <= r < b`. Simple shift-and-subtract base-2^32
    /// algorithm with a normalization step (Knuth D, simplified).
    fn divmod_mag(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert!(!b.is_empty(), "division by zero BigInt");
        if Self::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            let (q, r) = Self::divmod_small(a, b[0]);
            return (q, if r == 0 { Vec::new() } else { vec![r] });
        }
        // Knuth algorithm D with u32 limbs and u64 intermediates.
        let shift = b.last().unwrap().leading_zeros();
        let bn = Self::shl_bits(b, shift);
        let mut an = Self::shl_bits(a, shift);
        an.push(0); // extra limb for the algorithm
        let n = bn.len();
        let m = an.len() - n - 1;
        let mut q = vec![0u32; m + 1];
        let btop = bn[n - 1] as u64;
        let bsec = bn[n - 2] as u64;
        for j in (0..=m).rev() {
            let top = ((an[j + n] as u64) << 32) | an[j + n - 1] as u64;
            let mut qhat = top / btop;
            let mut rhat = top % btop;
            while qhat >= 1u64 << 32 || qhat * bsec > ((rhat << 32) | an[j + n - 2] as u64) {
                qhat -= 1;
                rhat += btop;
                if rhat >= 1u64 << 32 {
                    break;
                }
            }
            // Multiply-and-subtract qhat * bn from an[j..j+n+1].
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * bn[i] as u64 + carry;
                carry = p >> 32;
                let d = an[j + i] as i64 - (p as u32) as i64 - borrow;
                if d < 0 {
                    an[j + i] = (d + (1i64 << 32)) as u32;
                    borrow = 1;
                } else {
                    an[j + i] = d as u32;
                    borrow = 0;
                }
            }
            let d = an[j + n] as i64 - carry as i64 - borrow;
            if d < 0 {
                // qhat was one too large: add back.
                an[j + n] = (d + (1i64 << 32)) as u32;
                qhat -= 1;
                let mut c = 0u64;
                for i in 0..n {
                    let s = an[j + i] as u64 + bn[i] as u64 + c;
                    an[j + i] = s as u32;
                    c = s >> 32;
                }
                an[j + n] = an[j + n].wrapping_add(c as u32);
            } else {
                an[j + n] = d as u32;
            }
            q[j] = qhat as u32;
        }
        let rem = Self::shr_bits(&an[..n], shift);
        (q, rem)
    }

    fn shl_bits(a: &[u32], bits: u32) -> Vec<u32> {
        if bits == 0 {
            return a.to_vec();
        }
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u32;
        for &x in a {
            out.push((x << bits) | carry);
            carry = (x as u64 >> (32 - bits)) as u32;
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    fn shr_bits(a: &[u32], bits: u32) -> Vec<u32> {
        if bits == 0 {
            let mut v = a.to_vec();
            while v.last() == Some(&0) {
                v.pop();
            }
            return v;
        }
        let mut out = vec![0u32; a.len()];
        let mut carry = 0u32;
        for i in (0..a.len()).rev() {
            out[i] = (a[i] >> bits) | carry;
            carry = a[i] << (32 - bits);
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Truncated division and remainder (`(a/b, a%b)` with the remainder
    /// taking the sign of `a`, matching Rust's `/` and `%` on primitives).
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero BigInt");
        let (q, r) = Self::divmod_mag(&self.limbs, &other.limbs);
        let qs = self.sign * other.sign;
        (BigInt::from_limbs(qs, q), BigInt::from_limbs(self.sign, r))
    }

    /// Floor division: rounds toward negative infinity.
    pub fn div_floor(&self, other: &BigInt) -> BigInt {
        let (q, r) = self.div_rem(other);
        if !r.is_zero() && (r.sign * other.sign) < 0 {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Euclidean / floor modulus: result has the sign of `other`
    /// (and `0 <= |result| < |other|`). Satisfies
    /// `self == self.div_floor(other) * other + self.mod_floor(other)`.
    pub fn mod_floor(&self, other: &BigInt) -> BigInt {
        let (_, r) = self.div_rem(other);
        if !r.is_zero() && (r.sign * other.sign) < 0 {
            r + other.clone()
        } else {
            r
        }
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = a.div_rem(&b).1;
            a = b;
            b = r;
        }
        a
    }

    /// Least common multiple (always non-negative).
    pub fn lcm(&self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let g = self.gcd(other);
        (self.abs() / g) * other.abs()
    }

    /// `self` raised to a small power.
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Convert to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        self.to_i128().and_then(|v| i64::try_from(v).ok())
    }

    /// Convert to `i128` if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut mag: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            mag |= (l as u128) << (32 * i);
        }
        if self.sign >= 0 {
            i128::try_from(mag).ok()
        } else if mag <= i128::MAX as u128 + 1 {
            Some((mag as i128).wrapping_neg())
        } else {
            None
        }
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &l in self.limbs.iter().rev() {
            v = v * 4294967296.0 + l as f64;
        }
        if self.sign < 0 {
            -v
        } else {
            v
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::from(v as i128)
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i128)
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from(v as i128)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        if v == 0 {
            return BigInt::zero();
        }
        let sign: i8 = if v < 0 { -1 } else { 1 };
        let mut mag = v.unsigned_abs();
        let mut limbs = Vec::new();
        while mag != 0 {
            limbs.push(mag as u32);
            mag >>= 32;
        }
        BigInt { sign, limbs }
    }
}

impl FromStr for BigInt {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (-1i8, rest),
            None => (1i8, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(format!("invalid integer literal: {s:?}"));
        }
        let mut acc = BigInt::zero();
        let ten = BigInt::from(10i64);
        for c in digits.chars() {
            let d = c
                .to_digit(10)
                .ok_or_else(|| format!("invalid digit {c:?} in integer literal"))?;
            acc = &acc * &ten + BigInt::from(d as i64);
        }
        acc.sign = if acc.limbs.is_empty() { 0 } else { sign };
        Ok(acc)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut digits = Vec::new();
        let mut mag = self.limbs.clone();
        while !mag.is_empty() {
            let (q, r) = BigInt::divmod_small(&mag, 1_000_000_000);
            let mut q = q;
            while q.last() == Some(&0) {
                q.pop();
            }
            digits.push(r);
            mag = q;
        }
        let mut s = String::new();
        if self.sign < 0 {
            s.push('-');
        }
        s.push_str(&digits.pop().unwrap().to_string());
        while let Some(d) = digits.pop() {
            s.push_str(&format!("{d:09}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => {}
            ord => return ord,
        }
        let mag = Self::cmp_mag(&self.limbs, &other.limbs);
        if self.sign < 0 {
            mag.reverse()
        } else {
            mag
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = -self.sign;
        self
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        if self.sign == 0 {
            return other.clone();
        }
        if other.sign == 0 {
            return self.clone();
        }
        if self.sign == other.sign {
            BigInt::from_limbs(self.sign, BigInt::add_mag(&self.limbs, &other.limbs))
        } else {
            match BigInt::cmp_mag(&self.limbs, &other.limbs) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_limbs(self.sign, BigInt::sub_mag(&self.limbs, &other.limbs))
                }
                Ordering::Less => {
                    BigInt::from_limbs(other.sign, BigInt::sub_mag(&other.limbs, &self.limbs))
                }
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, other: &BigInt) -> BigInt {
        self + &(-other.clone())
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        BigInt::from_limbs(
            self.sign * other.sign,
            BigInt::mul_mag(&self.limbs, &other.limbs),
        )
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, other: &BigInt) -> BigInt {
        self.div_rem(other).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, other: &BigInt) -> BigInt {
        self.div_rem(other).1
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                (&self).$method(&other)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, other: &BigInt) -> BigInt {
                (&self).$method(other)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                self.$method(&other)
            }
        }
    };
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);
forward_binop!(Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, other: &BigInt) {
        *self = &*self + other;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, other: &BigInt) {
        *self = &*self - other;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, other: &BigInt) {
        *self = &*self * other;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_rand::{Rng, RngCore, SeedableRng};

    fn bi(v: i128) -> BigInt {
        BigInt::from(v)
    }

    /// Deterministic generator for the randomized tests below.
    fn rng() -> sia_rand::rngs::StdRng {
        sia_rand::rngs::StdRng::seed_from_u64(0xb161_0000)
    }

    /// Uniform `i128` in `[-2^bits, 2^bits)`.
    fn rand_i128(r: &mut impl RngCore, bits: u32) -> i128 {
        let span = 1i128 << bits;
        let hi = i128::from(r.next_u64()) << 64;
        let raw = hi | i128::from(r.next_u64());
        raw.rem_euclid(2 * span) - span
    }

    /// Random decimal digit string with `1..=len` digits (no leading zero).
    fn rand_digits(r: &mut impl RngCore, len: usize) -> String {
        let n = r.gen_range(1usize..=len);
        let mut s = String::new();
        s.push(char::from(b'1' + (r.gen_range(0u32..9)) as u8));
        for _ in 1..n {
            s.push(char::from(b'0' + (r.gen_range(0u32..10)) as u8));
        }
        s
    }

    #[test]
    fn construct_and_signs() {
        assert!(bi(0).is_zero());
        assert_eq!(bi(0).signum(), 0);
        assert_eq!(bi(5).signum(), 1);
        assert_eq!(bi(-5).signum(), -1);
        assert!(bi(1).is_one());
        assert!(!bi(-1).is_one());
        assert!(bi(4).is_even());
        assert!(!bi(7).is_even());
        assert!(bi(0).is_even());
    }

    #[test]
    fn display_roundtrip() {
        for v in [0i128, 1, -1, 42, -42, i64::MAX as i128, i64::MIN as i128] {
            assert_eq!(bi(v).to_string(), v.to_string());
            assert_eq!(v.to_string().parse::<BigInt>().unwrap(), bi(v));
        }
        let big = "123456789012345678901234567890123456789012345678901";
        let parsed: BigInt = big.parse().unwrap();
        assert_eq!(parsed.to_string(), big);
        let neg = format!("-{big}");
        assert_eq!(neg.parse::<BigInt>().unwrap().to_string(), neg);
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12x".parse::<BigInt>().is_err());
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(bi(2) + bi(3), bi(5));
        assert_eq!(bi(2) - bi(3), bi(-1));
        assert_eq!(bi(-2) * bi(3), bi(-6));
        assert_eq!(bi(7) / bi(2), bi(3));
        assert_eq!(bi(7) % bi(2), bi(1));
        assert_eq!(bi(-7) / bi(2), bi(-3));
        assert_eq!(bi(-7) % bi(2), bi(-1));
    }

    #[test]
    fn floor_division() {
        assert_eq!(bi(7).div_floor(&bi(2)), bi(3));
        assert_eq!(bi(-7).div_floor(&bi(2)), bi(-4));
        assert_eq!(bi(7).div_floor(&bi(-2)), bi(-4));
        assert_eq!(bi(-7).div_floor(&bi(-2)), bi(3));
        assert_eq!(bi(-7).mod_floor(&bi(2)), bi(1));
        assert_eq!(bi(7).mod_floor(&bi(-2)), bi(-1));
        assert_eq!(bi(6).mod_floor(&bi(3)), bi(0));
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(bi(12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(-12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(0).gcd(&bi(5)), bi(5));
        assert_eq!(bi(4).lcm(&bi(6)), bi(12));
        assert_eq!(bi(0).lcm(&bi(6)), bi(0));
    }

    #[test]
    fn pow_small() {
        assert_eq!(bi(2).pow(10), bi(1024));
        assert_eq!(bi(-3).pow(3), bi(-27));
        assert_eq!(bi(5).pow(0), bi(1));
        assert_eq!(bi(10).pow(30).to_string(), format!("1{}", "0".repeat(30)));
    }

    #[test]
    fn big_multiplication_identity() {
        let a: BigInt = "340282366920938463463374607431768211456".parse().unwrap(); // 2^128
        let b = &a * &a;
        assert_eq!((&b / &a), a);
        assert!((&b % &a).is_zero());
    }

    #[test]
    fn to_primitive() {
        assert_eq!(bi(42).to_i64(), Some(42));
        assert_eq!(bi(-42).to_i64(), Some(-42));
        assert_eq!(bi(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(bi(i128::MIN).to_i128(), Some(i128::MIN));
        let huge: BigInt = "170141183460469231731687303715884105728".parse().unwrap(); // 2^127
        assert_eq!(huge.to_i128(), None);
        assert_eq!((-huge).to_i128(), Some(i128::MIN));
    }

    #[test]
    fn bits() {
        assert_eq!(bi(0).bits(), 0);
        assert_eq!(bi(1).bits(), 1);
        assert_eq!(bi(255).bits(), 8);
        assert_eq!(bi(256).bits(), 9);
        assert_eq!(bi(1i128 << 100).bits(), 101);
    }

    #[test]
    fn to_f64_approx() {
        assert_eq!(bi(0).to_f64(), 0.0);
        assert_eq!(bi(-3).to_f64(), -3.0);
        assert!((bi(1i128 << 80).to_f64() - (1i128 << 80) as f64).abs() < 1e60);
    }

    #[test]
    fn randomized_add_sub_match_i128() {
        let mut r = rng();
        for _ in 0..512 {
            let (a, b) = (rand_i128(&mut r, 100), rand_i128(&mut r, 100));
            assert_eq!(bi(a) + bi(b), bi(a + b));
            assert_eq!(bi(a) - bi(b), bi(a - b));
        }
    }

    #[test]
    fn randomized_mul_matches_i128() {
        let mut r = rng();
        for _ in 0..512 {
            let (a, b) = (rand_i128(&mut r, 60), rand_i128(&mut r, 60));
            assert_eq!(bi(a) * bi(b), bi(a * b));
        }
    }

    #[test]
    fn randomized_divrem_matches_i64() {
        let mut r = rng();
        for _ in 0..512 {
            let a = r.next_u64() as i64;
            let mut b = r.next_u64() as i64;
            if b == 0 {
                b = 1;
            }
            let (q, m) = bi(i128::from(a)).div_rem(&bi(i128::from(b)));
            assert_eq!(q, bi(i128::from(a) / i128::from(b)));
            assert_eq!(m, bi(i128::from(a) % i128::from(b)));
        }
    }

    #[test]
    fn randomized_divrem_reconstructs() {
        let mut r = rng();
        for _ in 0..256 {
            let mut a_str = rand_digits(&mut r, 40);
            if r.gen_bool_fair() {
                a_str.insert(0, '-');
            }
            let b_str = rand_digits(&mut r, 21);
            let a: BigInt = a_str.parse().unwrap();
            let b: BigInt = b_str.parse().unwrap();
            let (q, m) = a.div_rem(&b);
            assert_eq!(&q * &b + &m, a.clone());
            assert!(m.abs() < b.abs());
            // remainder sign matches dividend (truncated semantics)
            assert!(m.is_zero() || m.signum() == a.signum());
        }
    }

    #[test]
    fn randomized_floor_div_reconstructs() {
        let mut r = rng();
        for _ in 0..512 {
            let a = r.next_u64() as i64;
            let mut b = r.next_u64() as i64;
            if b == 0 {
                b = 1;
            }
            let (a_big, b_big) = (bi(i128::from(a)), bi(i128::from(b)));
            let q = a_big.div_floor(&b_big);
            let m = a_big.mod_floor(&b_big);
            assert_eq!(&q * &b_big + &m, a_big);
            assert!(m.is_zero() || m.signum() == b_big.signum());
        }
    }

    #[test]
    fn randomized_gcd_divides() {
        let mut r = rng();
        for _ in 0..512 {
            let a = r.next_u64() as i64;
            let b = r.next_u64() as i64;
            let g = bi(i128::from(a)).gcd(&bi(i128::from(b)));
            if a != 0 || b != 0 {
                assert!((bi(i128::from(a)) % &g).is_zero());
                assert!((bi(i128::from(b)) % &g).is_zero());
                assert!(g.is_positive());
            } else {
                assert!(g.is_zero());
            }
        }
    }

    #[test]
    fn randomized_cmp_matches_i128() {
        let mut r = rng();
        for _ in 0..512 {
            let a = (i128::from(r.next_u64()) << 64) | i128::from(r.next_u64());
            let b = (i128::from(r.next_u64()) << 64) | i128::from(r.next_u64());
            assert_eq!(bi(a).cmp(&bi(b)), a.cmp(&b));
        }
    }

    #[test]
    fn randomized_display_parse_roundtrip() {
        let mut r = rng();
        for _ in 0..256 {
            let mut s = rand_digits(&mut r, 61);
            if r.gen_bool_fair() {
                s.insert(0, '-');
            }
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }
}
