//! Arbitrary-precision integer and rational arithmetic for Sia.
//!
//! The SMT solver ([`sia-smt`](../sia_smt/index.html)) performs simplex
//! pivoting over rationals and Cooper quantifier elimination over integers;
//! both produce intermediate coefficients that overflow `i128` on adversarial
//! inputs, so every theory-level number in the workspace is a [`BigInt`] or a
//! [`BigRat`].
//!
//! The representation is deliberately simple — sign + little-endian `u32`
//! limbs, schoolbook multiplication, Knuth-style long division — because the
//! numbers that arise from query predicates are small (a few limbs); we
//! optimize for correctness and predictable behaviour, not for
//! thousand-digit throughput.

#![warn(missing_docs)]

mod bigint;
mod bigrat;

pub use bigint::BigInt;
pub use bigrat::BigRat;

/// Greatest common divisor of two `u64`s (binary GCD).
///
/// Exposed because several callers (coefficient normalization in
/// `sia-smt`, weight rationalization in `sia-svm`) need a fast machine-word
/// GCD before falling back to bignums.
pub fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// Least common multiple of two `u64`s; panics on overflow.
pub fn lcm_u64(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd_u64(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_u64_basics() {
        assert_eq!(gcd_u64(0, 0), 0);
        assert_eq!(gcd_u64(0, 7), 7);
        assert_eq!(gcd_u64(7, 0), 7);
        assert_eq!(gcd_u64(12, 18), 6);
        assert_eq!(gcd_u64(17, 13), 1);
        assert_eq!(gcd_u64(u64::MAX, u64::MAX), u64::MAX);
    }

    #[test]
    fn lcm_u64_basics() {
        assert_eq!(lcm_u64(0, 5), 0);
        assert_eq!(lcm_u64(4, 6), 12);
        assert_eq!(lcm_u64(7, 13), 91);
    }
}
