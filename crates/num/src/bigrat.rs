//! Arbitrary-precision rationals, normalized with a positive denominator.

use crate::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An arbitrary-precision rational number `num / den`.
///
/// Invariants: `den > 0` and `gcd(num, den) == 1` (with `0` represented as
/// `0/1`). All constructors normalize.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigRat {
    num: BigInt,
    den: BigInt,
}

impl BigRat {
    /// Construct `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "BigRat with zero denominator");
        let mut num = num;
        let mut den = den;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        let g = num.gcd(&den);
        if !g.is_one() && !g.is_zero() {
            num = num / &g;
            den = den / &g;
        }
        if num.is_zero() {
            den = BigInt::one();
        }
        BigRat { num, den }
    }

    /// The rational zero.
    pub fn zero() -> Self {
        BigRat {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The rational one.
    pub fn one() -> Self {
        BigRat {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Construct from an integer.
    pub fn from_int(v: impl Into<BigInt>) -> Self {
        BigRat {
            num: v.into(),
            den: BigInt::one(),
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True iff the value is an integer (denominator 1).
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Sign: -1, 0, or 1.
    pub fn signum(&self) -> i8 {
        self.num.signum()
    }

    /// True iff `self > 0`.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// True iff `self < 0`.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Absolute value.
    pub fn abs(&self) -> BigRat {
        BigRat {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self == 0`.
    pub fn recip(&self) -> BigRat {
        BigRat::new(self.den.clone(), self.num.clone())
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        self.num.div_floor(&self.den)
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        -((-self.num.clone()).div_floor(&self.den))
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        // Good enough for reporting/plotting; exact arithmetic never
        // round-trips through f64.
        self.num.to_f64() / self.den.to_f64()
    }

    /// Exact conversion from an `f64` (every finite double is a rational
    /// with a power-of-two denominator). Returns `None` for NaN/∞.
    pub fn from_f64(v: f64) -> Option<BigRat> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(BigRat::zero());
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exp = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mantissa, exp2) = if exp == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1u64 << 52), exp - 1075)
        };
        let m = BigInt::from(mantissa) * BigInt::from(sign);
        Some(if exp2 >= 0 {
            BigRat::from_int(m * BigInt::from(2i64).pow(exp2 as u32))
        } else {
            BigRat::new(m, BigInt::from(2i64).pow((-exp2) as u32))
        })
    }
}

impl Default for BigRat {
    fn default() -> Self {
        BigRat::zero()
    }
}

impl From<i64> for BigRat {
    fn from(v: i64) -> Self {
        BigRat::from_int(v)
    }
}

impl From<BigInt> for BigRat {
    fn from(v: BigInt) -> Self {
        BigRat::from_int(v)
    }
}

impl FromStr for BigRat {
    type Err = String;

    /// Parses `"a"`, `"a/b"`, or a decimal `"a.b"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse()?;
            let den: BigInt = d.trim().parse()?;
            if den.is_zero() {
                return Err(format!("zero denominator in rational literal {s:?}"));
            }
            return Ok(BigRat::new(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let negative = int_part.trim_start().starts_with('-');
            let int: BigInt = if int_part.is_empty() || int_part == "-" {
                BigInt::zero()
            } else {
                int_part.parse()?
            };
            let frac: BigInt = if frac_part.is_empty() {
                BigInt::zero()
            } else {
                frac_part.parse()?
            };
            if frac.is_negative() {
                return Err(format!("invalid decimal literal {s:?}"));
            }
            let scale = BigInt::from(10i64).pow(frac_part.len() as u32);
            let mag = int.abs() * &scale + frac;
            let num = if negative { -mag } else { mag };
            return Ok(BigRat::new(num, scale));
        }
        Ok(BigRat::from_int(s.parse::<BigInt>()?))
    }
}

impl fmt::Display for BigRat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for BigRat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigRat({self})")
    }
}

impl PartialOrd for BigRat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d (b,d > 0)  <=>  a*d vs c*b
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for BigRat {
    type Output = BigRat;
    fn neg(mut self) -> BigRat {
        self.num = -self.num;
        self
    }
}

impl Neg for &BigRat {
    type Output = BigRat;
    fn neg(self) -> BigRat {
        -self.clone()
    }
}

impl Add for &BigRat {
    type Output = BigRat;
    fn add(self, other: &BigRat) -> BigRat {
        BigRat::new(
            &self.num * &other.den + &other.num * &self.den,
            &self.den * &other.den,
        )
    }
}

impl Sub for &BigRat {
    type Output = BigRat;
    fn sub(self, other: &BigRat) -> BigRat {
        BigRat::new(
            &self.num * &other.den - &other.num * &self.den,
            &self.den * &other.den,
        )
    }
}

impl Mul for &BigRat {
    type Output = BigRat;
    fn mul(self, other: &BigRat) -> BigRat {
        BigRat::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div for &BigRat {
    type Output = BigRat;
    fn div(self, other: &BigRat) -> BigRat {
        assert!(!other.is_zero(), "division of BigRat by zero");
        BigRat::new(&self.num * &other.den, &self.den * &other.num)
    }
}

macro_rules! forward_binop_rat {
    ($trait:ident, $method:ident) => {
        impl $trait for BigRat {
            type Output = BigRat;
            fn $method(self, other: BigRat) -> BigRat {
                (&self).$method(&other)
            }
        }
        impl $trait<&BigRat> for BigRat {
            type Output = BigRat;
            fn $method(self, other: &BigRat) -> BigRat {
                (&self).$method(other)
            }
        }
        impl $trait<BigRat> for &BigRat {
            type Output = BigRat;
            fn $method(self, other: BigRat) -> BigRat {
                self.$method(&other)
            }
        }
    };
}

forward_binop_rat!(Add, add);
forward_binop_rat!(Sub, sub);
forward_binop_rat!(Mul, mul);
forward_binop_rat!(Div, div);

impl AddAssign<&BigRat> for BigRat {
    fn add_assign(&mut self, other: &BigRat) {
        *self = &*self + other;
    }
}

impl SubAssign<&BigRat> for BigRat {
    fn sub_assign(&mut self, other: &BigRat) {
        *self = &*self - other;
    }
}

impl MulAssign<&BigRat> for BigRat {
    fn mul_assign(&mut self, other: &BigRat) {
        *self = &*self * other;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_rand::{Rng, SeedableRng};

    fn r(n: i64, d: i64) -> BigRat {
        BigRat::new(BigInt::from(n), BigInt::from(d))
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 7), BigRat::zero());
        assert_eq!(r(0, 7).denom(), &BigInt::one());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(0, 1) < r(1, 100));
        assert_eq!(r(3, 6).cmp(&r(1, 2)), Ordering::Equal);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(r(6, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(6, 2).ceil(), BigInt::from(3i64));
    }

    #[test]
    fn parsing() {
        assert_eq!("3/4".parse::<BigRat>().unwrap(), r(3, 4));
        assert_eq!("-3/4".parse::<BigRat>().unwrap(), r(-3, 4));
        assert_eq!("0.25".parse::<BigRat>().unwrap(), r(1, 4));
        assert_eq!("-0.5".parse::<BigRat>().unwrap(), r(-1, 2));
        assert_eq!("42".parse::<BigRat>().unwrap(), r(42, 1));
        assert!("1/0".parse::<BigRat>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(r(3, 4).to_string(), "3/4");
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!(r(-1, 3).to_string(), "-1/3");
    }

    #[test]
    fn from_f64_exact() {
        assert_eq!(BigRat::from_f64(0.5).unwrap(), r(1, 2));
        assert_eq!(BigRat::from_f64(-0.25).unwrap(), r(-1, 4));
        assert_eq!(BigRat::from_f64(3.0).unwrap(), r(3, 1));
        assert_eq!(BigRat::from_f64(0.0).unwrap(), BigRat::zero());
        assert!(BigRat::from_f64(f64::NAN).is_none());
        assert!(BigRat::from_f64(f64::INFINITY).is_none());
    }

    #[test]
    fn recip() {
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert_eq!(r(-3, 4).recip(), r(-4, 3));
    }

    fn rng() -> sia_rand::rngs::StdRng {
        sia_rand::rngs::StdRng::seed_from_u64(0xb16_9a70)
    }

    #[test]
    fn randomized_add_commutes() {
        let mut g = rng();
        for _ in 0..512 {
            let (a, b) = (g.gen_range(-1000i64..1000), g.gen_range(1i64..100));
            let (c, d) = (g.gen_range(-1000i64..1000), g.gen_range(1i64..100));
            assert_eq!(r(a, b) + r(c, d), r(c, d) + r(a, b));
        }
    }

    #[test]
    fn randomized_mul_inverse() {
        let mut g = rng();
        for _ in 0..512 {
            let (a, b) = (g.gen_range(1i64..10000), g.gen_range(1i64..10000));
            assert_eq!(r(a, b) * r(a, b).recip(), BigRat::one());
        }
    }

    #[test]
    fn randomized_floor_le_val_lt_floor_plus_one() {
        let mut g = rng();
        for _ in 0..512 {
            let (a, b) = (g.gen_range(-100_000i64..100_000), g.gen_range(1i64..1000));
            let v = r(a, b);
            let fl = BigRat::from(v.floor());
            assert!(fl <= v);
            assert!(v < &fl + &BigRat::one());
        }
    }

    #[test]
    fn randomized_from_f64_roundtrip() {
        let mut g = rng();
        for _ in 0..512 {
            let v = g.gen_range(-1e12f64..1e12f64);
            let q = BigRat::from_f64(v).unwrap();
            assert_eq!(q.to_f64(), v);
        }
    }

    #[test]
    fn randomized_cmp_consistent_with_f64() {
        let mut g = rng();
        for _ in 0..512 {
            let (a, b) = (g.gen_range(-1000i64..1000), g.gen_range(1i64..100));
            let (c, d) = (g.gen_range(-1000i64..1000), g.gen_range(1i64..100));
            let (x, y) = (r(a, b), r(c, d));
            let (fx, fy) = (a as f64 / b as f64, c as f64 / d as f64);
            if (fx - fy).abs() > 1e-9 {
                assert_eq!(x < y, fx < fy);
            }
        }
    }
}
