//! Generator configuration: the knobs, plus a flat JSON round-trip so a
//! workload file can echo the exact config that produced it.

use sia_obs::{json_number, json_string, parse_object, JsonValue};

/// Zone-fragment eligibility policy for generated atoms.
///
/// The static derivation tier (difference-bound matrices) can discharge a
/// request without touching the SVM/solver only when every atom is a
/// unit-coefficient bound (`c ⋈ k`) or difference (`c - d ⋈ k`). The policy
/// controls whether generated predicates stay inside that fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ZonePolicy {
    /// No constraint: mostly eligible atoms with an occasional ineligible one.
    #[default]
    Any,
    /// Every atom is zone-eligible (static derivation can fire).
    Eligible,
    /// At least one ineligible atom per request (static derivation cannot
    /// produce an exact result, so the SVM/solver path is exercised).
    Ineligible,
}

impl ZonePolicy {
    /// Stable lower-case name used in config files and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            ZonePolicy::Any => "any",
            ZonePolicy::Eligible => "eligible",
            ZonePolicy::Ineligible => "ineligible",
        }
    }

    /// Parse a policy name.
    pub fn parse(s: &str) -> Result<ZonePolicy, String> {
        match s {
            "any" => Ok(ZonePolicy::Any),
            "eligible" => Ok(ZonePolicy::Eligible),
            "ineligible" => Ok(ZonePolicy::Ineligible),
            other => Err(format!(
                "unknown zone policy {other:?} (expected any|eligible|ineligible)"
            )),
        }
    }
}

/// All generator knobs. `Default` is a moderate CNF-leaning workload over
/// `lineitem` with no selectivity target and no repetition.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Target table (must exist in the schema registry).
    pub table: String,
    /// Number of requests to generate.
    pub count: usize,
    /// RNG seed; same seed + config → identical workload.
    pub seed: u64,
    /// Minimum top-level term count.
    pub min_terms: usize,
    /// Maximum top-level term count.
    pub max_terms: usize,
    /// Probability the top level is a conjunction (CNF-leaning) rather than
    /// a disjunction (DNF-leaning).
    pub cnf_weight: f64,
    /// Probability a top-level term is a nested two/three-atom group of the
    /// opposite connective rather than a single atom.
    pub nest_rate: f64,
    /// Probability an atom over a dictionary column becomes an IN-list
    /// (encoded as a disjunction of equalities).
    pub in_list_rate: f64,
    /// Maximum IN-list length.
    pub max_in_list: usize,
    /// Probability a range atom widens into a BETWEEN (two-sided bound).
    pub between_rate: f64,
    /// Probability an atom uses divisibility-style integer division
    /// (`c / k ⋈ q`) when the policy allows ineligible atoms.
    pub div_rate: f64,
    /// Probability column picks prefer nullable columns (NULL-heavy
    /// workloads stress three-valued logic paths).
    pub null_weight: f64,
    /// Zone-fragment eligibility policy.
    pub zone: ZonePolicy,
    /// Target whole-predicate selectivity on sampled rows, if any.
    pub target_selectivity: Option<f64>,
    /// Acceptable absolute deviation from the target.
    pub selectivity_tolerance: f64,
    /// Number of rows sampled per table for selectivity estimation.
    pub sample_rows: usize,
    /// Fresh-template redraw budget when chasing a selectivity target.
    pub max_retries: usize,
    /// Probability a request repeats an earlier template (the cache-hit
    /// knob): identical predicate modulo optional parameter drift.
    pub repeat_rate: f64,
    /// Probability a repeated template drifts its constants (near-miss
    /// traffic: same shape, different parameters → cache miss).
    pub drift_rate: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            table: "lineitem".to_string(),
            count: 100,
            seed: 0x51A_6E11,
            min_terms: 2,
            max_terms: 5,
            cnf_weight: 0.75,
            nest_rate: 0.25,
            in_list_rate: 0.15,
            max_in_list: 5,
            between_rate: 0.2,
            div_rate: 0.3,
            null_weight: 0.0,
            zone: ZonePolicy::Any,
            target_selectivity: None,
            selectivity_tolerance: 0.1,
            sample_rows: 256,
            max_retries: 16,
            repeat_rate: 0.0,
            drift_rate: 0.0,
        }
    }
}

impl GenConfig {
    /// Serialize as one flat JSON object (strings and numbers only, so the
    /// workspace's hand-rolled JSONL parser can read it back).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let push = |s: &mut String, k: &str, v: String| {
            if s.len() > 1 {
                s.push(',');
            }
            s.push_str(&json_string(k));
            s.push(':');
            s.push_str(&v);
        };
        push(&mut s, "table", json_string(&self.table));
        push(&mut s, "count", json_number(self.count as f64));
        // u64 seeds above 2^53 don't survive an f64 round-trip; ship as text.
        push(&mut s, "seed", json_string(&self.seed.to_string()));
        push(&mut s, "min_terms", json_number(self.min_terms as f64));
        push(&mut s, "max_terms", json_number(self.max_terms as f64));
        push(&mut s, "cnf_weight", json_number(self.cnf_weight));
        push(&mut s, "nest_rate", json_number(self.nest_rate));
        push(&mut s, "in_list_rate", json_number(self.in_list_rate));
        push(&mut s, "max_in_list", json_number(self.max_in_list as f64));
        push(&mut s, "between_rate", json_number(self.between_rate));
        push(&mut s, "div_rate", json_number(self.div_rate));
        push(&mut s, "null_weight", json_number(self.null_weight));
        push(&mut s, "zone", json_string(self.zone.name()));
        if let Some(t) = self.target_selectivity {
            push(&mut s, "target_selectivity", json_number(t));
        }
        push(
            &mut s,
            "selectivity_tolerance",
            json_number(self.selectivity_tolerance),
        );
        push(&mut s, "sample_rows", json_number(self.sample_rows as f64));
        push(&mut s, "max_retries", json_number(self.max_retries as f64));
        push(&mut s, "repeat_rate", json_number(self.repeat_rate));
        push(&mut s, "drift_rate", json_number(self.drift_rate));
        s.push('}');
        s
    }

    /// Parse a config from the flat JSON emitted by [`GenConfig::to_json`].
    /// Unknown keys are ignored (forward compatibility); missing keys keep
    /// their defaults.
    pub fn from_json(line: &str) -> Result<GenConfig, String> {
        let pairs = parse_object(line)?;
        let mut cfg = GenConfig::default();
        for (k, v) in pairs {
            match (k.as_str(), &v) {
                ("table", JsonValue::Str(s)) => cfg.table.clone_from(s),
                ("count", JsonValue::Num(n)) => cfg.count = *n as usize,
                ("seed", JsonValue::Str(s)) => {
                    cfg.seed = s.parse().map_err(|_| format!("bad seed {s:?}"))?;
                }
                ("seed", JsonValue::Num(n)) => cfg.seed = *n as u64,
                ("min_terms", JsonValue::Num(n)) => cfg.min_terms = *n as usize,
                ("max_terms", JsonValue::Num(n)) => cfg.max_terms = *n as usize,
                ("cnf_weight", JsonValue::Num(n)) => cfg.cnf_weight = *n,
                ("nest_rate", JsonValue::Num(n)) => cfg.nest_rate = *n,
                ("in_list_rate", JsonValue::Num(n)) => cfg.in_list_rate = *n,
                ("max_in_list", JsonValue::Num(n)) => cfg.max_in_list = *n as usize,
                ("between_rate", JsonValue::Num(n)) => cfg.between_rate = *n,
                ("div_rate", JsonValue::Num(n)) => cfg.div_rate = *n,
                ("null_weight", JsonValue::Num(n)) => cfg.null_weight = *n,
                ("zone", JsonValue::Str(s)) => cfg.zone = ZonePolicy::parse(s)?,
                ("target_selectivity", JsonValue::Num(n)) => cfg.target_selectivity = Some(*n),
                ("selectivity_tolerance", JsonValue::Num(n)) => cfg.selectivity_tolerance = *n,
                ("sample_rows", JsonValue::Num(n)) => cfg.sample_rows = *n as usize,
                ("max_retries", JsonValue::Num(n)) => cfg.max_retries = *n as usize,
                ("repeat_rate", JsonValue::Num(n)) => cfg.repeat_rate = *n,
                ("drift_rate", JsonValue::Num(n)) => cfg.drift_rate = *n,
                _ => {}
            }
        }
        if cfg.min_terms == 0 || cfg.max_terms < cfg.min_terms {
            return Err(format!(
                "invalid term bounds {}..={}",
                cfg.min_terms, cfg.max_terms
            ));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let mut cfg = GenConfig {
            table: "wide".to_string(),
            seed: u64::MAX - 3,
            zone: ZonePolicy::Ineligible,
            target_selectivity: Some(0.25),
            repeat_rate: 0.5,
            ..GenConfig::default()
        };
        cfg.count = 42;
        let back = GenConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn missing_target_stays_none() {
        let cfg = GenConfig::default();
        assert!(cfg.target_selectivity.is_none());
        let back = GenConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back.target_selectivity, None);
    }

    #[test]
    fn zone_parse_rejects_unknown() {
        assert!(ZonePolicy::parse("sometimes").is_err());
        assert_eq!(ZonePolicy::parse("eligible").unwrap(), ZonePolicy::Eligible);
    }
}
