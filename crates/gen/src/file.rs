//! The workload file format: JSONL with a header line echoing the generator
//! config, then one flat object per request. Replayable (`sia batch
//! --workload`) and diffable across PRs.
//!
//! Every value is a string or a number — the workspace's hand-rolled JSON
//! parser (`sia_obs::parse_object`) knows no other shapes, on purpose.

use sia_expr::Pred;
use sia_obs::{json_number, json_string, parse_object, JsonValue};
use sia_sql::parse_predicate;

use crate::config::GenConfig;
use crate::generate::GenRequest;

/// Format version stamped into the header line.
pub const WORKLOAD_VERSION: f64 = 1.0;

/// A parsed workload file: the config that produced it plus the requests.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Generator config echoed from the header.
    pub config: GenConfig,
    /// The requests, in file order.
    pub requests: Vec<GenRequest>,
}

/// Render one request as a flat JSON line.
fn request_line(r: &GenRequest) -> String {
    let mut s = String::from("{");
    let push = |s: &mut String, k: &str, v: String| {
        if s.len() > 1 {
            s.push(',');
        }
        s.push_str(&json_string(k));
        s.push(':');
        s.push_str(&v);
    };
    push(&mut s, "id", json_string(&r.id));
    push(&mut s, "table", json_string(&r.table));
    push(&mut s, "predicate", json_string(&r.predicate.to_string()));
    push(&mut s, "cols", json_string(&r.cols.join(",")));
    if let Some(sel) = r.est_selectivity {
        push(&mut s, "selectivity", json_number(sel));
    }
    if let Some(t) = r.template {
        push(&mut s, "template", json_number(t as f64));
    }
    s.push('}');
    s
}

/// Serialize a workload: header line first, one request per line after.
pub fn to_string(config: &GenConfig, requests: &[GenRequest]) -> String {
    let mut out = String::new();
    // The header is the config object plus a version marker.
    let cfg = config.to_json();
    out.push_str(&format!(
        "{{\"sia_workload\":{},{}",
        json_number(WORKLOAD_VERSION),
        &cfg[1..]
    ));
    out.push('\n');
    for r in requests {
        out.push_str(&request_line(r));
        out.push('\n');
    }
    out
}

fn parse_request_line(line: &str, lineno: usize) -> Result<GenRequest, String> {
    let pairs = parse_object(line).map_err(|e| format!("workload line {lineno}: {e}"))?;
    let mut id = None;
    let mut table = None;
    let mut predicate: Option<Pred> = None;
    let mut cols: Vec<String> = Vec::new();
    let mut est_selectivity = None;
    let mut template = None;
    for (k, v) in pairs {
        match (k.as_str(), &v) {
            ("id", JsonValue::Str(s)) => id = Some(s.clone()),
            ("table", JsonValue::Str(s)) => table = Some(s.clone()),
            ("predicate", JsonValue::Str(s)) => {
                predicate = Some(
                    parse_predicate(s)
                        .map_err(|e| format!("workload line {lineno}: bad predicate: {e}"))?,
                );
            }
            ("cols", JsonValue::Str(s)) => {
                cols = s
                    .split(',')
                    .map(str::trim)
                    .filter(|c| !c.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            ("selectivity", JsonValue::Num(n)) => est_selectivity = Some(*n),
            ("template", JsonValue::Num(n)) => template = Some(*n as usize),
            _ => {}
        }
    }
    Ok(GenRequest {
        id: id.ok_or_else(|| format!("workload line {lineno}: missing id"))?,
        table: table.unwrap_or_else(|| "lineitem".to_string()),
        predicate: predicate.ok_or_else(|| format!("workload line {lineno}: missing predicate"))?,
        cols,
        est_selectivity,
        template,
    })
}

/// Parse a workload file's full contents (header + request lines). Blank
/// lines are ignored.
pub fn from_str(text: &str) -> Result<Workload, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines
        .next()
        .ok_or_else(|| "empty workload file".to_string())?;
    let pairs = parse_object(header).map_err(|e| format!("workload header: {e}"))?;
    let version = pairs
        .iter()
        .find_map(|(k, v)| (k == "sia_workload").then(|| v.as_num()).flatten());
    match version {
        Some(v) if v == WORKLOAD_VERSION => {}
        Some(v) => return Err(format!("unsupported workload version {v}")),
        None => return Err("missing sia_workload header (is this a workload file?)".to_string()),
    }
    let config = GenConfig::from_json(header)?;
    let mut requests = Vec::new();
    for (i, line) in lines {
        requests.push(parse_request_line(line, i + 1)?);
    }
    Ok(Workload { config, requests })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;

    #[test]
    fn round_trips_a_generated_workload() {
        let cfg = GenConfig {
            count: 12,
            repeat_rate: 0.4,
            target_selectivity: Some(0.3),
            ..GenConfig::default()
        };
        let reqs = generate(&cfg).unwrap();
        let text = to_string(&cfg, &reqs);
        let back = from_str(&text).unwrap();
        assert_eq!(back.config, cfg);
        assert_eq!(back.requests.len(), reqs.len());
        for (a, b) in back.requests.iter().zip(&reqs) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.table, b.table);
            // The predicate survives Display → parse.
            assert_eq!(a.predicate.to_string(), b.predicate.to_string());
            assert_eq!(a.cols, b.cols);
            assert_eq!(a.template, b.template);
        }
    }

    #[test]
    fn rejects_non_workload_input() {
        assert!(from_str("").is_err());
        assert!(from_str("{\"id\":\"q0\"}").is_err());
        assert!(from_str("not json").is_err());
    }
}
