//! Schema registry for the workload generator: every TPC-H table plus a
//! synthetic wide table, each column annotated with a sampling distribution
//! so generated constants can be drawn from realistic value ranges and
//! selectivity can be estimated against sampled rows.

use sia_expr::{ColumnDef, DataType, Date, Schema, Value};
use sia_rand::rngs::StdRng;
use sia_rand::{Rng, SeedableRng};

/// How values of a column are distributed, for sampling and constant drawing.
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Uniform integer in `lo..=hi`.
    IntUniform {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Dictionary-encoded categorical column: uniform code in `0..cardinality`.
    IntDict {
        /// Number of distinct codes.
        cardinality: i64,
    },
    /// Uniform double in `lo..hi`.
    DoubleUniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Uniform date between two days-since-epoch bounds (inclusive).
    DateUniform {
        /// Inclusive lower bound in days since 1970-01-01.
        lo_days: i64,
        /// Inclusive upper bound in days since 1970-01-01.
        hi_days: i64,
    },
    /// A date offset from an earlier column in the same table by a uniform
    /// number of days in `lo..=hi` — models TPC-H's shipdate/commitdate/
    /// receiptdate correlation with the order date.
    DateOffset {
        /// Name of the base column (must appear earlier in the table spec).
        base: &'static str,
        /// Inclusive lower offset in days.
        lo: i64,
        /// Inclusive upper offset in days.
        hi: i64,
    },
}

/// One column of a generator table: definition, distribution, NULL rate.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Column name.
    pub name: &'static str,
    /// Declared type.
    pub ty: DataType,
    /// Sampling distribution.
    pub dist: Dist,
    /// Fraction of sampled values that are NULL (0.0 = non-nullable).
    pub null_rate: f64,
}

impl ColumnSpec {
    fn new(name: &'static str, ty: DataType, dist: Dist) -> Self {
        ColumnSpec {
            name,
            ty,
            dist,
            null_rate: 0.0,
        }
    }

    fn with_nulls(mut self, rate: f64) -> Self {
        self.null_rate = rate;
        self
    }

    /// Whether this column is dictionary-encoded categorical.
    pub fn is_dict(&self) -> bool {
        matches!(self.dist, Dist::IntDict { .. })
    }
}

/// A table the generator can target: named columns with distributions.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name (lower-case, TPC-H style).
    pub name: &'static str,
    /// Columns in declaration order.
    pub cols: Vec<ColumnSpec>,
}

impl TableSpec {
    /// The `sia-expr` schema for type checking and lint seeding.
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.cols
                .iter()
                .map(|c| {
                    if c.null_rate > 0.0 {
                        ColumnDef::nullable(c.name, c.ty)
                    } else {
                        ColumnDef::new(c.name, c.ty)
                    }
                })
                .collect(),
        )
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c.name == name)
    }

    /// Column spec by name.
    pub fn column(&self, name: &str) -> Option<&ColumnSpec> {
        self.cols.iter().find(|c| c.name == name)
    }

    /// Sample `n` rows deterministically. Each row is one `Value` per column
    /// in declaration order; NULLs appear per the column's `null_rate`.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<Vec<Value>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row: Vec<Value> = Vec::with_capacity(self.cols.len());
            for col in &self.cols {
                if col.null_rate > 0.0 && rng.gen_bool(col.null_rate) {
                    row.push(Value::Null);
                    continue;
                }
                let v = match &col.dist {
                    Dist::IntUniform { lo, hi } => Value::Int(rng.gen_range(*lo..=*hi)),
                    Dist::IntDict { cardinality } => {
                        Value::Int(rng.gen_range(0..(*cardinality).max(1)))
                    }
                    Dist::DoubleUniform { lo, hi } => Value::Double(rng.gen_range(*lo..*hi)),
                    Dist::DateUniform { lo_days, hi_days } => {
                        Value::Int(rng.gen_range(*lo_days..=*hi_days))
                    }
                    Dist::DateOffset { base, lo, hi } => {
                        let idx = self
                            .index_of(base)
                            .unwrap_or_else(|| panic!("DateOffset base {base:?} not in table"));
                        let base_days = match row[idx] {
                            Value::Int(d) => d,
                            // Base was NULL (or non-int): fall back to epoch of
                            // the registry's date range so the offset still
                            // yields a plausible date.
                            _ => days("1995-01-01"),
                        };
                        Value::Int(base_days + rng.gen_range(*lo..=*hi))
                    }
                };
                row.push(v);
            }
            rows.push(row);
        }
        rows
    }
}

fn days(s: &str) -> i64 {
    Date::parse(s).expect("valid literal date").to_days()
}

fn date_uniform(lo: &str, hi: &str) -> Dist {
    Dist::DateUniform {
        lo_days: days(lo),
        hi_days: days(hi),
    }
}

/// All tables the generator knows about.
///
/// `orders` and `lineitem` mirror the distributions of `sia-tpch`'s data
/// generator; the remaining TPC-H tables use TPC-H-spec-style ranges with
/// text columns dictionary-encoded as small integer domains; `wide` is a
/// synthetic 16-column table with NULL-heavy and categorical columns.
pub fn tables() -> Vec<TableSpec> {
    use DataType::{Date as DateTy, Double, Integer};
    vec![
        TableSpec {
            name: "orders",
            cols: vec![
                ColumnSpec::new(
                    "o_orderkey",
                    Integer,
                    Dist::IntUniform {
                        lo: 1,
                        hi: 1_500_000,
                    },
                ),
                ColumnSpec::new(
                    "o_custkey",
                    Integer,
                    Dist::IntUniform { lo: 1, hi: 150_000 },
                ),
                ColumnSpec::new(
                    "o_orderdate",
                    DateTy,
                    date_uniform("1992-01-01", "1998-08-02"),
                ),
                ColumnSpec::new(
                    "o_totalprice",
                    Double,
                    Dist::DoubleUniform {
                        lo: 850.0,
                        hi: 555_000.0,
                    },
                ),
                ColumnSpec::new("o_orderstatus", Integer, Dist::IntDict { cardinality: 3 }),
                ColumnSpec::new("o_orderpriority", Integer, Dist::IntDict { cardinality: 5 }),
            ],
        },
        TableSpec {
            name: "lineitem",
            cols: vec![
                ColumnSpec::new(
                    "l_orderkey",
                    Integer,
                    Dist::IntUniform {
                        lo: 1,
                        hi: 1_500_000,
                    },
                ),
                ColumnSpec::new("l_linenumber", Integer, Dist::IntUniform { lo: 1, hi: 7 }),
                ColumnSpec::new("l_quantity", Integer, Dist::IntUniform { lo: 1, hi: 50 }),
                ColumnSpec::new(
                    "l_orderdate",
                    DateTy,
                    date_uniform("1992-01-01", "1998-08-02"),
                ),
                ColumnSpec::new(
                    "l_shipdate",
                    DateTy,
                    Dist::DateOffset {
                        base: "l_orderdate",
                        lo: 1,
                        hi: 121,
                    },
                ),
                ColumnSpec::new(
                    "l_commitdate",
                    DateTy,
                    Dist::DateOffset {
                        base: "l_orderdate",
                        lo: 30,
                        hi: 90,
                    },
                ),
                ColumnSpec::new(
                    "l_receiptdate",
                    DateTy,
                    Dist::DateOffset {
                        base: "l_shipdate",
                        lo: 1,
                        hi: 30,
                    },
                ),
                ColumnSpec::new(
                    "l_extendedprice",
                    Double,
                    Dist::DoubleUniform {
                        lo: 900.0,
                        hi: 105_000.0,
                    },
                ),
                ColumnSpec::new("l_returnflag", Integer, Dist::IntDict { cardinality: 3 }),
                ColumnSpec::new("l_linestatus", Integer, Dist::IntDict { cardinality: 2 }),
            ],
        },
        TableSpec {
            name: "part",
            cols: vec![
                ColumnSpec::new(
                    "p_partkey",
                    Integer,
                    Dist::IntUniform { lo: 1, hi: 200_000 },
                ),
                ColumnSpec::new("p_size", Integer, Dist::IntUniform { lo: 1, hi: 50 }),
                ColumnSpec::new(
                    "p_retailprice",
                    Double,
                    Dist::DoubleUniform {
                        lo: 900.0,
                        hi: 2_000.0,
                    },
                ),
                ColumnSpec::new("p_brand", Integer, Dist::IntDict { cardinality: 25 }),
                ColumnSpec::new("p_container", Integer, Dist::IntDict { cardinality: 40 }),
                ColumnSpec::new("p_mfgr", Integer, Dist::IntDict { cardinality: 5 }),
            ],
        },
        TableSpec {
            name: "customer",
            cols: vec![
                ColumnSpec::new(
                    "c_custkey",
                    Integer,
                    Dist::IntUniform { lo: 1, hi: 150_000 },
                ),
                ColumnSpec::new("c_nationkey", Integer, Dist::IntDict { cardinality: 25 }),
                ColumnSpec::new(
                    "c_acctbal",
                    Double,
                    Dist::DoubleUniform {
                        lo: -999.99,
                        hi: 9_999.99,
                    },
                ),
                ColumnSpec::new("c_mktsegment", Integer, Dist::IntDict { cardinality: 5 }),
            ],
        },
        TableSpec {
            name: "supplier",
            cols: vec![
                ColumnSpec::new("s_suppkey", Integer, Dist::IntUniform { lo: 1, hi: 10_000 }),
                ColumnSpec::new("s_nationkey", Integer, Dist::IntDict { cardinality: 25 }),
                ColumnSpec::new(
                    "s_acctbal",
                    Double,
                    Dist::DoubleUniform {
                        lo: -999.99,
                        hi: 9_999.99,
                    },
                ),
            ],
        },
        TableSpec {
            name: "partsupp",
            cols: vec![
                ColumnSpec::new(
                    "ps_partkey",
                    Integer,
                    Dist::IntUniform { lo: 1, hi: 200_000 },
                ),
                ColumnSpec::new(
                    "ps_suppkey",
                    Integer,
                    Dist::IntUniform { lo: 1, hi: 10_000 },
                ),
                ColumnSpec::new(
                    "ps_availqty",
                    Integer,
                    Dist::IntUniform { lo: 1, hi: 9_999 },
                ),
                ColumnSpec::new(
                    "ps_supplycost",
                    Double,
                    Dist::DoubleUniform {
                        lo: 1.0,
                        hi: 1_000.0,
                    },
                ),
            ],
        },
        TableSpec {
            name: "nation",
            cols: vec![
                ColumnSpec::new("n_nationkey", Integer, Dist::IntUniform { lo: 0, hi: 24 }),
                ColumnSpec::new("n_regionkey", Integer, Dist::IntDict { cardinality: 5 }),
                ColumnSpec::new("n_name", Integer, Dist::IntDict { cardinality: 25 }),
            ],
        },
        TableSpec {
            name: "region",
            cols: vec![
                ColumnSpec::new("r_regionkey", Integer, Dist::IntUniform { lo: 0, hi: 4 }),
                ColumnSpec::new("r_name", Integer, Dist::IntDict { cardinality: 5 }),
            ],
        },
        TableSpec {
            name: "wide",
            cols: vec![
                ColumnSpec::new(
                    "w_key",
                    Integer,
                    Dist::IntUniform {
                        lo: 1,
                        hi: 1_000_000,
                    },
                ),
                ColumnSpec::new("w_i0", Integer, Dist::IntUniform { lo: 0, hi: 100 }),
                ColumnSpec::new("w_i1", Integer, Dist::IntUniform { lo: -500, hi: 500 }),
                ColumnSpec::new("w_i2", Integer, Dist::IntUniform { lo: 0, hi: 10_000 }),
                ColumnSpec::new("w_i3", Integer, Dist::IntUniform { lo: 1900, hi: 2030 }),
                ColumnSpec::new("w_d0", Double, Dist::DoubleUniform { lo: 0.0, hi: 1.0 }),
                ColumnSpec::new(
                    "w_d1",
                    Double,
                    Dist::DoubleUniform {
                        lo: -1_000.0,
                        hi: 1_000.0,
                    },
                ),
                ColumnSpec::new("w_t0", DateTy, date_uniform("2015-01-01", "2026-01-01")),
                ColumnSpec::new(
                    "w_t1",
                    DateTy,
                    Dist::DateOffset {
                        base: "w_t0",
                        lo: 0,
                        hi: 365,
                    },
                ),
                ColumnSpec::new("w_n0", Integer, Dist::IntUniform { lo: 0, hi: 1_000 })
                    .with_nulls(0.3),
                ColumnSpec::new("w_n1", Integer, Dist::IntUniform { lo: 0, hi: 100 })
                    .with_nulls(0.5),
                ColumnSpec::new("w_n2", Double, Dist::DoubleUniform { lo: 0.0, hi: 100.0 })
                    .with_nulls(0.3),
                ColumnSpec::new("w_n3", DateTy, date_uniform("2020-01-01", "2026-01-01"))
                    .with_nulls(0.2),
                ColumnSpec::new("w_c0", Integer, Dist::IntDict { cardinality: 8 }),
                ColumnSpec::new("w_c1", Integer, Dist::IntDict { cardinality: 25 }),
                ColumnSpec::new("w_c2", Integer, Dist::IntDict { cardinality: 100 }),
            ],
        },
    ]
}

/// Look up a table spec by name.
pub fn table(name: &str) -> Option<TableSpec> {
    tables().into_iter().find(|t| t.name == name)
}

/// Every (table name, schema) pair — the registry consumers use to seed
/// `sia-analyze` lint so synthetic-schema requests don't trip `type-suspect`.
pub fn schemas() -> Vec<(String, Schema)> {
    tables()
        .into_iter()
        .map(|t| (t.name.to_string(), t.schema()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_tpch_and_wide() {
        let names: Vec<&str> = tables().iter().map(|t| t.name).collect();
        for want in [
            "orders", "lineitem", "part", "customer", "supplier", "partsupp", "nation", "region",
            "wide",
        ] {
            assert!(names.contains(&want), "missing table {want}");
        }
    }

    #[test]
    fn sampling_is_deterministic_and_typed() {
        let t = table("wide").unwrap();
        let a = t.sample(64, 7);
        let b = t.sample(64, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        for row in &a {
            assert_eq!(row.len(), t.cols.len());
            for (v, c) in row.iter().zip(&t.cols) {
                match (v, c.ty) {
                    (Value::Null, _) => assert!(c.null_rate > 0.0),
                    (Value::Int(_), DataType::Integer | DataType::Date) => {}
                    (Value::Double(_), DataType::Double) => {}
                    other => panic!("value/type mismatch {other:?} for {}", c.name),
                }
            }
        }
    }

    #[test]
    fn lineitem_offsets_follow_base() {
        let t = table("lineitem").unwrap();
        let od = t.index_of("l_orderdate").unwrap();
        let sd = t.index_of("l_shipdate").unwrap();
        for row in t.sample(128, 3) {
            let (Value::Int(o), Value::Int(s)) = (row[od], row[sd]) else {
                panic!("dates must be ints");
            };
            assert!((1..=121).contains(&(s - o)));
        }
    }
}
