//! `sia-gen`: a seed-deterministic, rule-based workload generator.
//!
//! The generator produces typed predicate-synthesis requests over a schema
//! registry (all TPC-H tables plus a synthetic wide table) with knobs for:
//!
//! - **shape** — CNF/DNF mix, nesting, IN-lists, BETWEEN, divisibility
//!   atoms, NULL-heavy and dictionary-encoded columns;
//! - **target selectivity** — constants drawn from empirical quantiles of
//!   sampled rows, measured under three-valued logic, repaired toward the
//!   target within a tolerance;
//! - **zone eligibility** — whether predicates stay inside the static
//!   derivation tier's difference-bound fragment or are forced out of it,
//!   so benchmarks can separate the static tier from SVM/solver costs;
//! - **repetition and drift** — the cache-hit knob: requests replay earlier
//!   templates verbatim (canonical cache hits) or with drifted constants
//!   (near-miss traffic).
//!
//! Same config + seed → byte-identical workload; see `tests/prop.rs` for
//! the property suite. The §6.3 presets reproduce the paper workload the
//! benchmark binaries previously built inline.

#![warn(missing_docs)]

pub mod config;
pub mod file;
pub mod generate;
pub mod preset;
pub mod schema;

pub use config::{GenConfig, ZonePolicy};
pub use file::{from_str, to_string, Workload, WORKLOAD_VERSION};
pub use generate::{generate, GenRequest};
pub use preset::{
    paper_6_3, paper_6_3_tasks, star_schema_configs, with_repeats, SEED_6_3_FAULT, SEED_6_3_SERVE,
};
pub use schema::{schemas, table, tables, ColumnSpec, Dist, TableSpec};
