//! Presets reproducing the paper's §6.3 workload, so the benchmark binaries
//! share one builder instead of three hand-copied ones.
//!
//! `paper_6_3` delegates to `sia-tpch`'s generator, which is the original
//! source of the workload — the preset is byte-for-byte identical to what
//! `exp_analyze`/`exp_serve`/`exp_fault` used to build inline.

use sia_tpch::{generate_workload, BenchQuery, WorkloadConfig, LINEITEM_COLS};

use crate::config::GenConfig;
use crate::generate::GenRequest;

/// The §6.3 seed shared by `exp_analyze` and `exp_serve`.
pub const SEED_6_3_SERVE: u64 = 0x51A_5E4E;
/// The §6.3 seed used by `exp_fault`.
pub const SEED_6_3_FAULT: u64 = 0x51A_FA17;

/// The paper's full §6.3 workload (200 queries, 3–8 conjuncts, the paper
/// seed) exactly as `sia_tpch::generate_workload` produces it.
pub fn paper_6_3() -> Vec<BenchQuery> {
    generate_workload(&WorkloadConfig::default())
}

/// §6.3-shaped synthesis tasks as the benchmark binaries consume them:
/// `count` queries with `min_terms..=max_terms` conjuncts under `seed`,
/// keeping only predicates that mention at least one lineitem column
/// (synthesis targets) and projecting `cols` down to those columns.
///
/// Ids are `q{n}` with the generator's original query numbering, so skipped
/// queries leave visible gaps — exactly the ids the old inline builders
/// produced.
pub fn paper_6_3_tasks(
    count: usize,
    min_terms: usize,
    max_terms: usize,
    seed: u64,
) -> Vec<GenRequest> {
    let queries = generate_workload(&WorkloadConfig {
        count,
        min_terms,
        max_terms,
        seed,
    });
    let mut out = Vec::new();
    for q in &queries {
        let cols: Vec<String> = q
            .predicate
            .columns()
            .into_iter()
            .filter(|c| LINEITEM_COLS.contains(&c.as_str()))
            .collect();
        if cols.is_empty() {
            // A predicate purely over o_orderdate has no lineitem columns
            // to synthesize for; drop it rather than emit a no-op task.
            continue;
        }
        out.push(GenRequest {
            id: format!("q{}", q.id),
            table: "lineitem".to_string(),
            predicate: q.predicate.clone(),
            cols,
            est_selectivity: None,
            template: None,
        });
    }
    out
}

/// Expand each task into `reps` requests with ids `{task.id}r{rep}`. Odd
/// repeats are alpha-renamed with a uniform `v{rep % 7}_` prefix: the
/// canonical template is unchanged, so they must hit the same cache entry
/// as the original shape.
pub fn with_repeats(tasks: &[GenRequest], reps: usize) -> Vec<GenRequest> {
    let mut out = Vec::with_capacity(tasks.len() * reps);
    for (ti, task) in tasks.iter().enumerate() {
        for rep in 0..reps {
            let (predicate, cols) = if rep % 2 == 1 {
                let k = rep % 7;
                let rename = |c: &str| format!("v{k}_{c}");
                (
                    task.predicate.map_columns(&|c| rename(c)),
                    task.cols.iter().map(|c| rename(c)).collect::<Vec<_>>(),
                )
            } else {
                (task.predicate.clone(), task.cols.clone())
            };
            out.push(GenRequest {
                id: format!("{}r{rep}", task.id),
                table: task.table.clone(),
                predicate,
                cols,
                est_selectivity: task.est_selectivity,
                template: (rep > 0).then_some(ti),
            });
        }
    }
    out
}

/// Star-schema traffic mix: (table, weight in percent). Fact tables carry
/// most of the load, small dimensions the tail — the usual TPC-H star shape.
const STAR_MIX: &[(&str, usize)] = &[
    ("lineitem", 50),
    ("orders", 20),
    ("partsupp", 10),
    ("part", 8),
    ("customer", 6),
    ("supplier", 3),
    ("nation", 2),
    ("region", 1),
];

/// A star-schema workload preset: splits `count` requests across the eight
/// TPC-H tables with a fact-heavy mix (lineitem 50%, orders 20%, partsupp
/// 10%, part 8%, customer 6%, supplier 3%, nation 2%, region 1%). Rounding
/// uses largest remainders so the per-table counts always sum to `count`.
/// Each table draws from its own deterministic stream (`seed` xor the
/// table's position), so regenerating any one table's slice is independent
/// of the others.
#[must_use]
pub fn star_schema_configs(count: usize, seed: u64) -> Vec<GenConfig> {
    // Integer shares first, then distribute the remainder to the largest
    // fractional parts (ties broken by mix order, fact tables first).
    let mut shares: Vec<(usize, usize, usize)> = STAR_MIX
        .iter()
        .enumerate()
        .map(|(i, &(_, w))| (i, count * w / 100, (count * w) % 100))
        .collect();
    let assigned: usize = shares.iter().map(|&(_, q, _)| q).sum();
    let mut leftover = count - assigned;
    shares.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    for share in &mut shares {
        if leftover == 0 {
            break;
        }
        share.1 += 1;
        leftover -= 1;
    }
    shares.sort_by_key(|&(i, _, _)| i);
    shares
        .into_iter()
        .filter(|&(_, n, _)| n > 0)
        .map(|(i, n, _)| GenConfig {
            table: STAR_MIX[i].0.to_string(),
            count: n,
            seed: seed ^ (0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(i as u64 + 1)),
            ..GenConfig::default()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_replicate_the_old_inline_builder() {
        // The exact loop `exp_serve`/`exp_fault` used to carry inline;
        // the preset must reproduce it byte for byte.
        let queries = generate_workload(&WorkloadConfig {
            count: 8,
            min_terms: 2,
            max_terms: 4,
            seed: SEED_6_3_SERVE,
        });
        let mut expected = Vec::new();
        for q in &queries {
            let base_cols: Vec<String> = q
                .predicate
                .columns()
                .into_iter()
                .filter(|c| LINEITEM_COLS.contains(&c.as_str()))
                .collect();
            if base_cols.is_empty() {
                continue;
            }
            for rep in 0..3 {
                let (predicate, cols) = if rep % 2 == 1 {
                    let k = rep % 7;
                    let rename = |c: &str| format!("v{k}_{c}");
                    (
                        q.predicate.map_columns(&|c| rename(c)),
                        base_cols.iter().map(|c| rename(c)).collect::<Vec<_>>(),
                    )
                } else {
                    (q.predicate.clone(), base_cols.clone())
                };
                expected.push((format!("q{}r{rep}", q.id), predicate.to_string(), cols));
            }
        }
        let got: Vec<(String, String, Vec<String>)> =
            with_repeats(&paper_6_3_tasks(8, 2, 4, SEED_6_3_SERVE), 3)
                .into_iter()
                .map(|r| (r.id, r.predicate.to_string(), r.cols))
                .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn star_schema_mix_sums_and_leans_on_facts() {
        for count in [1, 7, 100, 137, 1000] {
            let cfgs = star_schema_configs(count, 0x51A_57A2);
            let total: usize = cfgs.iter().map(|c| c.count).sum();
            assert_eq!(total, count, "mix must conserve the request count");
            assert!(cfgs.iter().all(|c| c.count > 0));
        }
        let cfgs = star_schema_configs(1000, 0x51A_57A2);
        let tables: Vec<&str> = cfgs.iter().map(|c| c.table.as_str()).collect();
        assert_eq!(
            tables,
            [
                "lineitem", "orders", "partsupp", "part", "customer", "supplier", "nation",
                "region"
            ]
        );
        assert_eq!(cfgs[0].count, 500, "lineitem carries half the load");
        assert_eq!(cfgs[7].count, 10, "region carries the 1% tail");
        // Every table draws from a distinct deterministic stream.
        let seeds: std::collections::HashSet<u64> = cfgs.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), cfgs.len());
        // All the named tables exist in the registry and generate cleanly.
        for cfg in &cfgs {
            let small = GenConfig {
                count: 2,
                ..cfg.clone()
            };
            assert!(crate::generate(&small).is_ok(), "table {}", cfg.table);
        }
    }

    #[test]
    fn tasks_are_deterministic() {
        let a = paper_6_3_tasks(6, 2, 4, SEED_6_3_FAULT);
        let b = paper_6_3_tasks(6, 2, 4, SEED_6_3_FAULT);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
