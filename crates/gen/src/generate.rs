//! The rule-based request generator: seed-deterministic predicate synthesis
//! requests with controllable shape, selectivity, zone eligibility,
//! repetition, and drift.

use std::collections::HashMap;

use sia_expr::{eval_pred, CmpOp, Date, Expr, Pred, Value};
use sia_obs::{add, Counter};
use sia_rand::rngs::StdRng;
use sia_rand::{Rng, SeedableRng};

use crate::config::{GenConfig, ZonePolicy};
use crate::schema::{table, ColumnSpec, TableSpec};

/// Salt XORed into the config seed for row sampling, so the sampled data and
/// the predicate draws are independent streams.
const SAMPLE_SALT: u64 = 0x005A_3ED0_u64;

/// One generated predicate-synthesis request.
#[derive(Debug, Clone, PartialEq)]
pub struct GenRequest {
    /// Request id (`g0`, `g1`, …).
    pub id: String,
    /// Table the predicate ranges over.
    pub table: String,
    /// The generated predicate.
    pub predicate: Pred,
    /// Columns the synthesized predicate may mention (the predicate's own
    /// columns).
    pub cols: Vec<String>,
    /// Selectivity measured on sampled rows (fraction of rows where the
    /// predicate evaluates TRUE under three-valued logic). `None` for
    /// presets that delegate to the paper's workload builder, which has no
    /// sampling bed.
    pub est_selectivity: Option<f64>,
    /// Index of the earlier request this one repeats, if any.
    pub template: Option<usize>,
}

/// Sampled rows with a column-name index, the generator's estimation bed.
struct SampleSet {
    idx: HashMap<String, usize>,
    rows: Vec<Vec<Value>>,
}

impl SampleSet {
    fn new(spec: &TableSpec, n: usize, seed: u64) -> SampleSet {
        let idx = spec
            .cols
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.to_string(), i))
            .collect();
        SampleSet {
            idx,
            rows: spec.sample(n.max(16), seed),
        }
    }

    /// Fraction of sampled rows where `p` evaluates TRUE (NULL counts as
    /// not-selected, matching WHERE semantics).
    fn selectivity(&self, p: &Pred) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let hits = self
            .rows
            .iter()
            .filter(|row| {
                eval_pred(p, &|name: &str| {
                    self.idx.get(name).map_or(Value::Null, |i| row[*i])
                }) == Some(true)
            })
            .count();
        hits as f64 / self.rows.len() as f64
    }

    /// Non-NULL values of `e` over the sample, sorted ascending. Empty when
    /// every row evaluates NULL.
    fn sorted_values(&self, e: &Expr) -> Vec<Value> {
        let mut vals: Vec<Value> = self
            .rows
            .iter()
            .filter_map(|row| {
                let v = sia_expr::eval_expr(e, &|name: &str| {
                    self.idx.get(name).map_or(Value::Null, |i| row[*i])
                });
                v.as_f64().map(|_| v)
            })
            .collect();
        vals.sort_by(|a, b| {
            a.as_f64()
                .partial_cmp(&b.as_f64())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        vals
    }

    /// Values of column `name` over rows satisfying `p`, sorted ascending.
    fn satisfying_values(&self, p: &Pred, name: &str) -> Vec<Value> {
        let Some(&ci) = self.idx.get(name) else {
            return Vec::new();
        };
        let mut vals: Vec<Value> = self
            .rows
            .iter()
            .filter(|row| {
                eval_pred(p, &|n: &str| {
                    self.idx.get(n).map_or(Value::Null, |i| row[*i])
                }) == Some(true)
            })
            .filter_map(|row| row[ci].as_f64().map(|_| row[ci]))
            .collect();
        vals.sort_by(|a, b| {
            a.as_f64()
                .partial_cmp(&b.as_f64())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        vals
    }
}

/// Pick the value at quantile `q` (0..=1) of a sorted non-empty slice.
fn quantile(vals: &[Value], q: f64) -> Value {
    let n = vals.len();
    let i = ((q.clamp(0.0, 1.0)) * (n - 1) as f64).round() as usize;
    vals[i.min(n - 1)]
}

/// Turn a sampled `Value` into a typed literal expression for column type
/// `ty` (dates travel as `Value::Int` epoch days in the sampler).
fn literal(v: Value, ty: sia_expr::DataType) -> Expr {
    match (v, ty) {
        (Value::Int(d), sia_expr::DataType::Date) => Expr::Date(Date::from_days(d)),
        (Value::Int(i), _) => Expr::Int(i),
        (Value::Double(x), _) => Expr::Double((x * 100.0).round() / 100.0),
        // NULL/Bool never reach here: sorted_values filters non-numeric.
        _ => Expr::Int(0),
    }
}

/// An atom's zone-fragment family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    /// Unit-coefficient bound or difference: static derivation stays exact.
    Eligible,
    /// Sum, scaled, or divided column: forces the SVM/solver path.
    Ineligible,
}

/// Everything `generate` threads through recursive construction.
struct Ctx<'a> {
    cfg: &'a GenConfig,
    spec: &'a TableSpec,
    samples: &'a SampleSet,
}

impl Ctx<'_> {
    /// Numeric (non-dictionary) columns, the operands for ordered atoms.
    fn numeric_cols(&self) -> Vec<&ColumnSpec> {
        self.spec.cols.iter().filter(|c| !c.is_dict()).collect()
    }

    /// Dictionary-encoded categorical columns.
    fn dict_cols(&self) -> Vec<&ColumnSpec> {
        self.spec.cols.iter().filter(|c| c.is_dict()).collect()
    }

    /// Pick a column from `pool`, preferring nullable ones with probability
    /// `null_weight`.
    fn pick_col<'c>(&self, pool: &[&'c ColumnSpec], rng: &mut StdRng) -> &'c ColumnSpec {
        assert!(!pool.is_empty(), "column pool must be non-empty");
        if self.cfg.null_weight > 0.0 && rng.gen_bool(self.cfg.null_weight) {
            let nullable: Vec<&&ColumnSpec> = pool.iter().filter(|c| c.null_rate > 0.0).collect();
            if !nullable.is_empty() {
                return nullable[rng.gen_range(0..nullable.len())];
            }
        }
        pool[rng.gen_range(0..pool.len())]
    }

    fn random_cmp(&self, rng: &mut StdRng) -> CmpOp {
        match rng.gen_range(0..8_u32) {
            0..=2 => CmpOp::Lt,
            3..=4 => CmpOp::Le,
            5..=6 => CmpOp::Gt,
            _ => CmpOp::Ge,
        }
    }

    /// Draw a constant for `lhs CMP c` aiming at atom selectivity `t`.
    fn bound_for(&self, lhs: &Expr, op: CmpOp, t: f64, rng: &mut StdRng) -> Option<Value> {
        let vals = self.samples.sorted_values(lhs);
        if vals.is_empty() {
            return None;
        }
        let q = match op {
            CmpOp::Lt | CmpOp::Le => t,
            CmpOp::Gt | CmpOp::Ge => 1.0 - t,
            // Equality bounds aren't quantile-driven; pick any value.
            CmpOp::Eq | CmpOp::Ne => rng.gen_unit_f64(),
        };
        Some(quantile(&vals, q))
    }

    /// A zone-eligible atom: range, BETWEEN, IN-list, or column difference.
    fn eligible_atom(&self, t: f64, rng: &mut StdRng) -> Pred {
        let dicts = self.dict_cols();
        if !dicts.is_empty() && rng.gen_bool(self.cfg.in_list_rate) {
            return self.in_list_atom(t, rng);
        }
        let numeric = self.numeric_cols();
        if rng.gen_bool(self.cfg.between_rate) {
            return self.between_atom(&numeric, t, rng);
        }
        // Column difference between two same-typed columns, when available.
        if rng.gen_bool(0.3) {
            if let Some(p) = self.diff_atom(&numeric, t, rng) {
                return p;
            }
        }
        self.range_atom(&numeric, t, rng)
    }

    fn range_atom(&self, pool: &[&ColumnSpec], t: f64, rng: &mut StdRng) -> Pred {
        let c = self.pick_col(pool, rng);
        let op = self.random_cmp(rng);
        let lhs = Expr::col(c.name);
        match self.bound_for(&lhs, op, t, rng) {
            Some(v) => lhs.cmp(op, literal(v, c.ty)),
            None => lhs.cmp(op, literal(Value::Int(0), c.ty)),
        }
    }

    /// `c BETWEEN lo AND hi` as a conjunction of two unit bounds, the band
    /// covering roughly fraction `t` of the sampled rows.
    fn between_atom(&self, pool: &[&ColumnSpec], t: f64, rng: &mut StdRng) -> Pred {
        let c = self.pick_col(pool, rng);
        let lhs = Expr::col(c.name);
        let vals = self.samples.sorted_values(&lhs);
        if vals.is_empty() {
            return lhs.ge(literal(Value::Int(0), c.ty));
        }
        let width = t.clamp(0.01, 1.0);
        let start = rng.gen_unit_f64() * (1.0 - width);
        let lo = quantile(&vals, start);
        let hi = quantile(&vals, start + width);
        Expr::col(c.name)
            .ge(literal(lo, c.ty))
            .and(lhs.le(literal(hi, c.ty)))
    }

    /// `c - d CMP k` over two same-typed numeric columns.
    fn diff_atom(&self, pool: &[&ColumnSpec], t: f64, rng: &mut StdRng) -> Option<Pred> {
        let a = self.pick_col(pool, rng);
        let partners: Vec<&&ColumnSpec> = pool
            .iter()
            .filter(|c| c.name != a.name && c.ty == a.ty)
            .collect();
        if partners.is_empty() {
            return None;
        }
        let b = partners[rng.gen_range(0..partners.len())];
        let lhs = Expr::col(a.name).sub(Expr::col(b.name));
        let op = self.random_cmp(rng);
        let v = self.bound_for(&lhs, op, t, rng)?;
        // A date difference is an interval: always an integer literal.
        Some(lhs.cmp(op, literal(v, sia_expr::DataType::Integer)))
    }

    /// IN-list over a dictionary column, encoded as a disjunction of
    /// equalities; list length tracks the target selectivity.
    fn in_list_atom(&self, t: f64, rng: &mut StdRng) -> Pred {
        let dicts = self.dict_cols();
        let c = self.pick_col(&dicts, rng);
        let card = match c.dist {
            crate::schema::Dist::IntDict { cardinality } => cardinality.max(1),
            _ => 8,
        };
        let want = ((t * card as f64).round() as usize).clamp(1, self.cfg.max_in_list);
        let mut codes: Vec<i64> = Vec::with_capacity(want);
        while codes.len() < want {
            let code = rng.gen_range(0..card);
            if !codes.contains(&code) {
                codes.push(code);
            }
        }
        Pred::or_all(
            codes
                .into_iter()
                .map(|code| Expr::col(c.name).eq_(Expr::Int(code))),
        )
    }

    /// A zone-ineligible atom — one whose canonical linear form has a
    /// non-unit coefficient key, which downgrades static derivation from
    /// exact to bounds and forces the SVM/solver path.
    ///
    /// Single-variable scaled or divided atoms (`2*c ⋈ k`, `c/3 ⋈ q`) do NOT
    /// qualify: canonicalization normalizes their coefficient back to one.
    /// Ineligibility needs two variables whose coefficients cannot both be
    /// normalized: `c + d ⋈ k`, `k*c - d ⋈ k`, or `c/k - d ⋈ q`.
    fn ineligible_atom(&self, t: f64, rng: &mut StdRng) -> Pred {
        let numeric = self.numeric_cols();
        let Some((c, d)) = self.ineligible_pair(&numeric, rng) else {
            // No usable pair (registry tables always have one; a custom
            // single-column table would land here): fall back to eligible.
            return self.range_atom(&numeric, t, rng);
        };
        let both_int = c.ty == sia_expr::DataType::Integer && d.ty == sia_expr::DataType::Integer;
        let lhs = if both_int && rng.gen_bool(self.cfg.div_rate) {
            // Divisibility-style: `c / k - d ⋈ q`.
            let k = rng.gen_range(2..=7_i64);
            Expr::col(c.name).div(Expr::Int(k)).sub(Expr::col(d.name))
        } else if rng.gen_bool_fair() {
            // Scaled: `k*c - d ⋈ q`.
            let k = rng.gen_range(2..=5_i64);
            Expr::Int(k).mul(Expr::col(c.name)).sub(Expr::col(d.name))
        } else {
            // Sum: `c + d ⋈ q`.
            Expr::col(c.name).add(Expr::col(d.name))
        };
        let op = self.random_cmp(rng);
        match self.bound_for(&lhs, op, t, rng) {
            Some(v) => {
                // Composite results are plain numbers even over date columns
                // (date - date is an interval), so never a DATE literal.
                let ty = if matches!(v, Value::Double(_)) {
                    sia_expr::DataType::Double
                } else {
                    sia_expr::DataType::Integer
                };
                lhs.cmp(op, literal(v, ty))
            }
            None => lhs.cmp(op, Expr::Int(0)),
        }
    }

    /// Two distinct numeric columns usable in one composite atom: same-typed
    /// (date pairs make interval arithmetic), or mixed-typed as long as
    /// neither is a date (a lone date in a composite would read as a
    /// date-vs-integer comparison and trip the type linter).
    fn ineligible_pair<'c>(
        &self,
        pool: &[&'c ColumnSpec],
        rng: &mut StdRng,
    ) -> Option<(&'c ColumnSpec, &'c ColumnSpec)> {
        let mut pairs: Vec<(&ColumnSpec, &ColumnSpec)> = Vec::new();
        for (i, c) in pool.iter().enumerate() {
            for (j, d) in pool.iter().enumerate() {
                if i == j {
                    continue;
                }
                let same = c.ty == d.ty;
                let no_dates = c.ty != sia_expr::DataType::Date && d.ty != sia_expr::DataType::Date;
                if same || no_dates {
                    pairs.push((c, d));
                }
            }
        }
        if pairs.is_empty() {
            return None;
        }
        Some(pairs[rng.gen_range(0..pairs.len())])
    }

    fn atom(&self, family: Family, t: f64, rng: &mut StdRng) -> Pred {
        match family {
            Family::Eligible => self.eligible_atom(t, rng),
            Family::Ineligible => self.ineligible_atom(t, rng),
        }
    }

    /// Family for one atom under the configured policy. `force` pins the
    /// atom ineligible regardless of dice.
    fn family(&self, force: bool, rng: &mut StdRng) -> Family {
        if force {
            return Family::Ineligible;
        }
        match self.cfg.zone {
            ZonePolicy::Eligible => Family::Eligible,
            ZonePolicy::Ineligible | ZonePolicy::Any => {
                // `Any` mixes in ineligible atoms at the div rate; forced
                // atoms already guarantee the Ineligible policy's invariant.
                if self.cfg.zone == ZonePolicy::Any && rng.gen_bool(self.cfg.div_rate * 0.5) {
                    Family::Ineligible
                } else {
                    Family::Eligible
                }
            }
        }
    }

    /// One top-level term: an atom, or (at `nest_rate`) a nested group of
    /// the opposite connective. `force_inel` guarantees the term contains
    /// at least one ineligible atom.
    fn term(&self, top_is_and: bool, t: f64, force_inel: bool, rng: &mut StdRng) -> Pred {
        if rng.gen_bool(self.cfg.nest_rate) {
            let n = rng.gen_range(2..=3_usize);
            // Selectivity algebra per nested connective: a disjunction of n
            // atoms needs each at 1-(1-t)^(1/n); a conjunction needs t^(1/n).
            let sub_t = if top_is_and {
                1.0 - (1.0 - t.clamp(0.01, 0.99)).powf(1.0 / n as f64)
            } else {
                t.clamp(0.01, 0.99).powf(1.0 / n as f64)
            };
            let forced_at = force_inel.then(|| rng.gen_range(0..n));
            let parts: Vec<Pred> = (0..n)
                .map(|i| {
                    let fam = self.family(forced_at == Some(i), rng);
                    self.atom(fam, sub_t, rng)
                })
                .collect();
            if top_is_and {
                Pred::or_all(parts)
            } else {
                Pred::and_all(parts)
            }
        } else {
            let fam = self.family(force_inel, rng);
            self.atom(fam, t, rng)
        }
    }

    /// Draw one whole predicate.
    fn predicate(&self, rng: &mut StdRng) -> Pred {
        let n = rng.gen_range(self.cfg.min_terms..=self.cfg.max_terms);
        let top_is_and = rng.gen_bool(self.cfg.cnf_weight);
        let target = self.cfg.target_selectivity.unwrap_or(0.3);
        // Per-term selectivity so n combined terms land near the target.
        let t = if top_is_and {
            target.clamp(0.01, 0.99).powf(1.0 / n as f64)
        } else {
            1.0 - (1.0 - target.clamp(0.01, 0.99)).powf(1.0 / n as f64)
        };
        // Ineligible policy: under a conjunction one forced atom taints every
        // DNF disjunct of the whole predicate; under a disjunction every
        // top-level term needs its own.
        let forced_term = match self.cfg.zone {
            ZonePolicy::Ineligible if top_is_and => Some(rng.gen_range(0..n)),
            _ => None,
        };
        let terms: Vec<Pred> = (0..n)
            .map(|i| {
                let force = match self.cfg.zone {
                    ZonePolicy::Ineligible => {
                        if top_is_and {
                            forced_term == Some(i)
                        } else {
                            true
                        }
                    }
                    _ => false,
                };
                self.term(top_is_and, t, force, rng)
            })
            .collect();
        if top_is_and {
            Pred::and_all(terms)
        } else {
            Pred::or_all(terms)
        }
    }

    /// Conjoin or disjoin a band to pull measured selectivity toward the
    /// target. Returns the repaired predicate (unverified — caller
    /// re-measures).
    fn repair(&self, p: &Pred, sel: f64, target: f64, rng: &mut StdRng) -> Option<Pred> {
        add(Counter::GenRepairs, 1);
        let numeric = self.numeric_cols();
        if numeric.is_empty() {
            return None;
        }
        if sel > target {
            // Overshoot: conjoin an upper bound keeping target/sel of the
            // currently-satisfying rows. Conjoining never reopens the
            // static-derivation path: an already-ineligible conjunction
            // stays ineligible whatever we AND onto it.
            let c = self.pick_col(&numeric, rng);
            let vals = self.samples.satisfying_values(p, c.name);
            if vals.is_empty() {
                return None;
            }
            let keep = (target / sel).clamp(0.0, 1.0);
            let v = quantile(&vals, keep);
            Some(p.clone().and(Expr::col(c.name).le(literal(v, c.ty))))
        } else {
            // Undershoot: disjoin a quantile band adding the missing rows.
            // Under the Ineligible policy the new disjunct needs its own
            // ineligible atom, or static derivation could discharge it
            // exactly; a wide composite bound costs little selectivity.
            let missing = (target - sel).clamp(0.01, 1.0);
            let mut band = self.between_atom(&numeric, missing, rng);
            if self.cfg.zone == ZonePolicy::Ineligible {
                band = band.and(self.ineligible_atom(0.97, rng));
            }
            Some(p.clone().or(band))
        }
    }
}

/// Nudge every comparison constant of `p` (small typed deltas). Columns and
/// expression structure are untouched, so the drifted predicate canonicalizes
/// to the same template with different parameters — a cache near-miss.
fn drift(p: &Pred, rng: &mut StdRng) -> Pred {
    match p {
        Pred::Lit(_) => p.clone(),
        Pred::Cmp { op, lhs, rhs } => {
            let nudged = match rhs {
                Expr::Int(v) => Expr::Int(v.saturating_add(rng.gen_range(1..=5_i64))),
                Expr::Double(x) => Expr::Double(((x * 1.03 + 0.5) * 100.0).round() / 100.0),
                Expr::Date(d) => Expr::Date(Date::from_days(
                    d.to_days().saturating_add(rng.gen_range(1..=14_i64)),
                )),
                other => other.clone(),
            };
            Pred::Cmp {
                op: *op,
                lhs: lhs.clone(),
                rhs: nudged,
            }
        }
        Pred::And(ps) => Pred::And(ps.iter().map(|q| drift(q, rng)).collect()),
        Pred::Or(ps) => Pred::Or(ps.iter().map(|q| drift(q, rng)).collect()),
        Pred::Not(q) => Pred::Not(Box::new(drift(q, rng))),
    }
}

/// Generate a workload from `cfg`. Deterministic: the same config (including
/// seed) always yields the identical request list.
pub fn generate(cfg: &GenConfig) -> Result<Vec<GenRequest>, String> {
    if cfg.min_terms == 0 || cfg.max_terms < cfg.min_terms {
        return Err(format!(
            "invalid term bounds {}..={}",
            cfg.min_terms, cfg.max_terms
        ));
    }
    if let Some(t) = cfg.target_selectivity {
        if !(0.0..=1.0).contains(&t) {
            return Err(format!("target selectivity {t} outside [0, 1]"));
        }
    }
    let spec = table(&cfg.table).ok_or_else(|| format!("unknown table {:?}", cfg.table))?;
    let samples = SampleSet::new(&spec, cfg.sample_rows, cfg.seed ^ SAMPLE_SALT);
    let ctx = Ctx {
        cfg,
        spec: &spec,
        samples: &samples,
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out: Vec<GenRequest> = Vec::with_capacity(cfg.count);

    for i in 0..cfg.count {
        add(Counter::GenRequests, 1);
        let id = format!("g{i}");

        // Repetition: replay an earlier template, optionally with drifted
        // parameters (same canonical template, different constants).
        if !out.is_empty() && rng.gen_bool(cfg.repeat_rate) {
            add(Counter::GenRepeats, 1);
            let j = rng.gen_range(0..out.len());
            let (predicate, est) = if rng.gen_bool(cfg.drift_rate) {
                let p = drift(&out[j].predicate, &mut rng);
                let est = Some(samples.selectivity(&p));
                (p, est)
            } else {
                (out[j].predicate.clone(), out[j].est_selectivity)
            };
            let cols = predicate.columns();
            out.push(GenRequest {
                id,
                table: cfg.table.clone(),
                predicate,
                cols,
                est_selectivity: est,
                template: Some(j),
            });
            continue;
        }

        // Fresh template: draw, then chase the selectivity target.
        let mut best = ctx.predicate(&mut rng);
        let mut best_sel = samples.selectivity(&best);
        if let Some(target) = cfg.target_selectivity {
            let tol = cfg.selectivity_tolerance.max(0.005);
            let mut tries = 0;
            while (best_sel - target).abs() > tol && tries < cfg.max_retries {
                add(Counter::GenRetries, 1);
                tries += 1;
                let cand = ctx.predicate(&mut rng);
                let sel = samples.selectivity(&cand);
                if (sel - target).abs() < (best_sel - target).abs() {
                    best = cand;
                    best_sel = sel;
                }
            }
            // Redraws alone rarely land inside a tight tolerance; repair the
            // best draw with a quantile band and keep it if it improves.
            let mut repairs = 0;
            while (best_sel - target).abs() > tol && repairs < 4 {
                repairs += 1;
                let Some(fixed) = ctx.repair(&best, best_sel, target, &mut rng) else {
                    break;
                };
                let sel = samples.selectivity(&fixed);
                if (sel - target).abs() < (best_sel - target).abs() {
                    best = fixed;
                    best_sel = sel;
                } else {
                    break;
                }
            }
        }
        let cols = best.columns();
        out.push(GenRequest {
            id,
            table: cfg.table.clone(),
            predicate: best,
            cols,
            est_selectivity: Some(best_sel),
            template: None,
        });
    }
    Ok(out)
}
