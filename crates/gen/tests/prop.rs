//! Property suite for the workload generator: every generated predicate
//! parses, canonicalizes idempotently, type-checks against its schema, and
//! respects the selectivity / zone / repetition knobs; generation is fully
//! deterministic under a fixed seed.

use sia_analyze::Analyzer;
use sia_cache::canonicalize;
use sia_expr::{ArithOp, Expr, Pred};
use sia_gen::{generate, schemas, table, GenConfig, ZonePolicy};
use sia_sql::parse_predicate;

/// A spread of configs covering the knob space.
fn configs() -> Vec<GenConfig> {
    vec![
        GenConfig {
            count: 20,
            ..GenConfig::default()
        },
        GenConfig {
            table: "wide".to_string(),
            count: 20,
            null_weight: 0.5,
            in_list_rate: 0.4,
            seed: 0x71DE,
            ..GenConfig::default()
        },
        GenConfig {
            table: "part".to_string(),
            count: 15,
            zone: ZonePolicy::Eligible,
            cnf_weight: 0.3,
            seed: 7,
            ..GenConfig::default()
        },
        GenConfig {
            count: 15,
            zone: ZonePolicy::Ineligible,
            div_rate: 0.6,
            seed: 99,
            ..GenConfig::default()
        },
        GenConfig {
            table: "orders".to_string(),
            count: 20,
            target_selectivity: Some(0.3),
            selectivity_tolerance: 0.12,
            repeat_rate: 0.3,
            seed: 0x5EED,
            ..GenConfig::default()
        },
    ]
}

#[test]
fn every_predicate_parses_and_round_trips() {
    for cfg in configs() {
        for r in generate(&cfg).unwrap() {
            let text = r.predicate.to_string();
            let parsed = parse_predicate(&text)
                .unwrap_or_else(|e| panic!("generated predicate must parse: {e}: {text}"));
            assert_eq!(parsed.to_string(), text, "Display/parse fixpoint");
            assert!(!r.cols.is_empty(), "request must name target columns");
        }
    }
}

#[test]
fn canonicalization_is_idempotent() {
    for cfg in configs() {
        for r in generate(&cfg).unwrap() {
            let canon = canonicalize(&r.predicate);
            let again = canonicalize(&canon.reconstruct());
            assert_eq!(
                canon.key_fragment(),
                again.key_fragment(),
                "canonical fixpoint for {}",
                r.predicate
            );
        }
    }
}

#[test]
fn predicates_type_check_against_the_registry() {
    let analyzer = schemas()
        .iter()
        .fold(Analyzer::new(), |a, (_, s)| a.with_schema(s));
    for cfg in configs() {
        let spec = table(&cfg.table).unwrap();
        let schema = spec.schema();
        for r in generate(&cfg).unwrap() {
            // Every referenced column exists in the request's table…
            for c in &r.cols {
                assert!(
                    schema.column(c).is_some(),
                    "unknown column {c} in table {}",
                    cfg.table
                );
            }
            // …and the registry-seeded linter finds nothing type-suspect.
            let suspects: Vec<String> = analyzer
                .lint(&r.predicate)
                .into_iter()
                .filter(|w| w.code == "type-suspect")
                .map(|w| w.message)
                .collect();
            assert!(suspects.is_empty(), "{}: {suspects:?}", r.predicate);
        }
    }
}

#[test]
fn targeted_selectivity_lands_within_tolerance() {
    let cfg = GenConfig {
        count: 25,
        target_selectivity: Some(0.3),
        selectivity_tolerance: 0.15,
        seed: 0x5E1,
        ..GenConfig::default()
    };
    for r in generate(&cfg).unwrap() {
        let est = r.est_selectivity.expect("fresh requests are measured");
        assert!(
            (est - 0.3).abs() <= 0.15,
            "{} landed at {est}, outside 0.3±0.15",
            r.id
        );
    }
}

#[test]
fn same_seed_same_workload_different_seed_differs() {
    let cfg = GenConfig {
        count: 30,
        repeat_rate: 0.4,
        drift_rate: 0.3,
        target_selectivity: Some(0.25),
        ..GenConfig::default()
    };
    let a = generate(&cfg).unwrap();
    let b = generate(&cfg).unwrap();
    assert_eq!(a, b, "same seed + config must be byte-identical");
    let c = generate(&GenConfig {
        seed: cfg.seed + 1,
        ..cfg
    })
    .unwrap();
    assert_ne!(a, c, "a different seed must move the workload");
}

/// Structural zone-eligibility: unit-coefficient bounds and differences only.
fn expr_is_zone_eligible(e: &Expr) -> bool {
    match e {
        Expr::Column(_) | Expr::Int(_) | Expr::Double(_) | Expr::Date(_) => true,
        Expr::Binary { op, lhs, rhs } => match op {
            ArithOp::Sub => matches!(&**lhs, Expr::Column(_)) && matches!(&**rhs, Expr::Column(_)),
            _ => false,
        },
    }
}

fn pred_atoms(p: &Pred, out: &mut Vec<(Expr, Expr)>) {
    match p {
        Pred::Lit(_) => {}
        Pred::Cmp { lhs, rhs, .. } => out.push((lhs.clone(), rhs.clone())),
        Pred::And(ps) | Pred::Or(ps) => ps.iter().for_each(|q| pred_atoms(q, out)),
        Pred::Not(q) => pred_atoms(q, out),
    }
}

#[test]
fn zone_knob_controls_static_derivability() {
    // Eligible: every atom stays in the difference-bound fragment.
    let eligible = GenConfig {
        count: 20,
        zone: ZonePolicy::Eligible,
        seed: 11,
        ..GenConfig::default()
    };
    for r in generate(&eligible).unwrap() {
        let mut atoms = Vec::new();
        pred_atoms(&r.predicate, &mut atoms);
        for (lhs, rhs) in atoms {
            assert!(
                expr_is_zone_eligible(&lhs) && expr_is_zone_eligible(&rhs),
                "ineligible atom in eligible workload: {} in {}",
                lhs,
                r.predicate
            );
        }
    }
    // Ineligible: static derivation must never produce an exact result, so
    // the synthesizer cannot discharge the request without SVM/solver work.
    let ineligible = GenConfig {
        count: 20,
        zone: ZonePolicy::Ineligible,
        seed: 12,
        ..GenConfig::default()
    };
    let analyzer = Analyzer::new();
    for r in generate(&ineligible).unwrap() {
        let exact = analyzer
            .derive(&r.predicate, &r.cols)
            .is_some_and(|d| d.is_exact());
        assert!(
            !exact,
            "static derivation was exact for a zone-ineligible predicate: {}",
            r.predicate
        );
    }
}

#[test]
fn repetition_replays_templates_and_drift_keeps_the_canonical_shape() {
    let cfg = GenConfig {
        count: 40,
        repeat_rate: 0.6,
        drift_rate: 0.5,
        seed: 0xCAFE,
        ..GenConfig::default()
    };
    let reqs = generate(&cfg).unwrap();
    let repeats = reqs.iter().filter(|r| r.template.is_some()).count();
    assert!(repeats >= 10, "repeat_rate 0.6 produced only {repeats}/40");
    let mut verbatim = 0;
    for r in &reqs {
        let Some(j) = r.template else { continue };
        let orig = &reqs[j];
        let (a, b) = (canonicalize(&r.predicate), canonicalize(&orig.predicate));
        assert_eq!(
            a.template.to_string(),
            b.template.to_string(),
            "a repeat must share its template's canonical shape"
        );
        if r.predicate == orig.predicate {
            verbatim += 1;
        }
    }
    assert!(verbatim > 0, "some repeats must be verbatim (cache hits)");
    // With drift off, every repeat is verbatim.
    let no_drift = GenConfig {
        drift_rate: 0.0,
        ..cfg
    };
    let plain = generate(&no_drift).unwrap();
    for r in &plain {
        if let Some(j) = r.template {
            assert_eq!(r.predicate, plain[j].predicate);
        }
    }
}
