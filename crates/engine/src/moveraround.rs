//! Predicate move-around: **pull-up → transition → push-down** across the
//! whole plan tree, with synthesis at join boundaries where static
//! reasoning runs out of columns (the paper's contribution).
//!
//! The local rewriter in [`crate::optimize`] only routes existing
//! conjuncts below a single join. This pass reasons globally:
//!
//! 1. **Pull-up** ([`pull_up`]): collect every filter conjunct and every
//!    join-equality predicate in the tree, with provenance (which node,
//!    which column scope).
//! 2. **Transition**: close the gathered conjunction with
//!    [`sia_analyze::Closure`] — union-find equivalence classes over the
//!    join keys, constant propagation, substitution, and transitive zone
//!    bounds — yielding the predicates entailed at every node.
//! 3. **Push-down**: for each scan, attach the strongest entailed
//!    predicate over that scan's columns (minus anything the local rules
//!    would put there anyway). Where a predicate straddles a join
//!    boundary and no static fact covers its columns on one side, invoke
//!    [`Synthesizer::synthesize`] to *learn* a pushable predicate from
//!    the boundary conjunction.
//!
//! # Soundness
//!
//! All joins in this engine are **inner** hash equi-joins and filters use
//! WHERE semantics (a row survives only when the predicate is TRUE; NULL
//! rejects). A derived predicate `d` over a scan's columns may be pushed
//! to that scan whenever `gathered ⇒ d` in the 3VL sense (whenever the
//! gathered conjunction is TRUE, `d` is TRUE): any output row of the full
//! plan restricts to a scan row on `d`'s columns with the same values, so
//! a scan row failing `d` (FALSE *or* NULL) cannot contribute to any
//! output row. This argument crosses inner-join boundaries freely; it
//! would **not** cross the null-padding side of an outer join, where only
//! null-rejecting predicates may move — the engine has no outer joins
//! today, but the scope rule is recorded here so the pass fails safe if
//! one is added: move-around must stop at any node that can pad with
//! NULLs.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::plan::Plan;
use sia_analyze::{Analyzer, Warning};
use sia_core::{SiaConfig, Synthesizer};
use sia_expr::{Expr, Pred, Schema};
use sia_obs::Counter;

/// How much predicate movement the optimizer may do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MoveAround {
    /// No global movement (the local push-down rules still apply).
    #[default]
    Off,
    /// Static pull-up / transition / push-down only.
    Static,
    /// Static movement plus CEGIS synthesis at blocked join boundaries.
    Synthesis,
}

impl MoveAround {
    /// Parse a CLI mode name.
    pub fn parse(s: &str) -> Result<MoveAround, String> {
        match s {
            "off" => Ok(MoveAround::Off),
            "static" => Ok(MoveAround::Static),
            "synth" | "synthesis" => Ok(MoveAround::Synthesis),
            other => Err(format!(
                "--mode must be off, static, or synth, got {other:?}"
            )),
        }
    }
}

/// One predicate gathered by pull-up, with provenance.
#[derive(Debug, Clone)]
pub struct GatheredPred {
    /// The predicate (a single conjunct, or a join-key equality).
    pub pred: Pred,
    /// Node label: `Filter@/l/r`-style path from the root (`l`/`r` are
    /// join sides, `0` a unary input).
    pub node: String,
    /// Column scope at that node (output columns of the node's input).
    pub scope: Vec<String>,
}

/// Walk the tree and gather every filter conjunct and join equality with
/// provenance. Pull-up is scope-safe for this plan algebra: `Filter` and
/// `Project` preserve rows, and `HashJoin` is inner, so every gathered
/// predicate holds (evaluates TRUE) on every row of the final output.
pub fn pull_up(plan: &Plan, schema_of: &impl Fn(&str) -> Option<Schema>) -> Vec<GatheredPred> {
    fn scope(plan: &Plan, schema_of: &impl Fn(&str) -> Option<Schema>) -> Vec<String> {
        match plan {
            Plan::Scan { table } => schema_of(table)
                .map(|s| s.columns().iter().map(|c| c.name.clone()).collect())
                .unwrap_or_default(),
            Plan::Filter { input, .. } => scope(input, schema_of),
            Plan::Project { columns, .. } => columns.clone(),
            Plan::HashJoin { left, right, .. } => {
                let mut s = scope(left, schema_of);
                s.extend(scope(right, schema_of));
                s
            }
        }
    }
    fn go(
        plan: &Plan,
        path: &str,
        schema_of: &impl Fn(&str) -> Option<Schema>,
        out: &mut Vec<GatheredPred>,
    ) {
        match plan {
            Plan::Scan { .. } => {}
            Plan::Filter { pred, input } => {
                for c in pred.conjuncts() {
                    out.push(GatheredPred {
                        pred: c.clone(),
                        node: format!("Filter@{path}"),
                        scope: scope(input, schema_of),
                    });
                }
                go(input, &format!("{path}/0"), schema_of, out);
            }
            Plan::Project { input, .. } => go(input, &format!("{path}/0"), schema_of, out),
            Plan::HashJoin {
                left,
                right,
                left_key,
                right_key,
            } => {
                out.push(GatheredPred {
                    pred: Expr::Column(left_key.clone()).eq_(Expr::Column(right_key.clone())),
                    node: format!("HashJoin@{path}"),
                    scope: scope(plan, schema_of),
                });
                go(left, &format!("{path}/l"), schema_of, out);
                go(right, &format!("{path}/r"), schema_of, out);
            }
        }
    }
    let mut out = Vec::new();
    go(plan, "", schema_of, &mut out);
    out
}

/// What the move-around pass did to one plan.
#[derive(Debug, Clone, Default)]
pub struct MoveAroundReport {
    /// Everything pull-up gathered (filters and join equalities).
    pub gathered: Vec<GatheredPred>,
    /// Per scan table: the statically derived predicate attached there.
    pub derived: Vec<(String, Pred)>,
    /// Per scan table: the synthesis-learned predicate attached there.
    pub synthesized: Vec<(String, Pred)>,
    /// The gathered conjunction is statically unsatisfiable (the plan
    /// provably returns no rows).
    pub contradiction: bool,
}

impl MoveAroundReport {
    /// Scans that received at least one new predicate.
    pub fn scans_pushed(&self) -> usize {
        let mut tables: BTreeSet<&str> = BTreeSet::new();
        tables.extend(self.derived.iter().map(|(t, _)| t.as_str()));
        tables.extend(self.synthesized.iter().map(|(t, _)| t.as_str()));
        tables.len()
    }

    /// The gathered predicates as one conjunction (what every derived
    /// predicate is entailed by — the solver-check obligation).
    pub fn gathered_conjunction(&self) -> Pred {
        Pred::and_all(self.gathered.iter().map(|g| g.pred.clone()))
    }
}

impl fmt::Display for MoveAroundReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "gathered {} predicate(s):", self.gathered.len())?;
        for g in &self.gathered {
            writeln!(f, "  {} at {}", g.pred, g.node)?;
        }
        if self.contradiction {
            writeln!(f, "contradiction: the gathered predicates admit no row")?;
        }
        for (t, p) in &self.derived {
            writeln!(f, "derived for scan {t}: {p}")?;
        }
        for (t, p) in &self.synthesized {
            writeln!(f, "synthesized for scan {t}: {p}")?;
        }
        if self.derived.is_empty() && self.synthesized.is_empty() {
            writeln!(f, "nothing new to push")?;
        }
        Ok(())
    }
}

/// Scan tables of a plan, in tree order (duplicates preserved).
fn scan_tables(plan: &Plan) -> Vec<String> {
    match plan {
        Plan::Scan { table } => vec![table.clone()],
        Plan::Filter { input, .. } | Plan::Project { input, .. } => scan_tables(input),
        Plan::HashJoin { left, right, .. } => {
            let mut t = scan_tables(left);
            t.extend(scan_tables(right));
            t
        }
    }
}

/// Attach per-table predicates directly above their scans.
fn attach(plan: Plan, preds: &BTreeMap<String, Pred>) -> Plan {
    match plan {
        Plan::Scan { table } => {
            let extra = preds.get(&table).cloned().unwrap_or_else(Pred::true_);
            Plan::scan(table).filter(extra)
        }
        Plan::Filter { pred, input } => attach(*input, preds).filter(pred),
        Plan::Project { columns, input } => attach(*input, preds).project(columns),
        Plan::HashJoin {
            left,
            right,
            left_key,
            right_key,
        } => attach(*left, preds).hash_join(attach(*right, preds), left_key, right_key),
    }
}

/// An analyzer seeded with the schemas of every table the plan scans.
fn analyzer_for(tables: &[String], schema_of: &impl Fn(&str) -> Option<Schema>) -> Analyzer {
    tables
        .iter()
        .filter_map(|t| schema_of(t))
        .fold(Analyzer::new(), |a, s| a.with_schema(&s))
}

/// Run the move-around pass. Returns the rewritten plan (derived
/// predicates attached above scans — the local rules then merge and order
/// them) and a report of what moved. `mode == Off` returns the plan
/// unchanged.
pub fn move_around(
    plan: Plan,
    schema_of: &impl Fn(&str) -> Option<Schema>,
    mode: MoveAround,
) -> (Plan, MoveAroundReport) {
    if mode == MoveAround::Off {
        return (plan, MoveAroundReport::default());
    }
    let gathered = pull_up(&plan, schema_of);
    if gathered.is_empty() {
        return (plan, MoveAroundReport::default());
    }
    let tables = scan_tables(&plan);
    let analyzer = analyzer_for(&tables, schema_of);
    let conj = Pred::and_all(gathered.iter().map(|g| g.pred.clone()));
    let closure = analyzer.close(&conj);
    let contradiction = closure.contradictory(&analyzer);

    let mut report = MoveAroundReport {
        gathered,
        contradiction,
        ..MoveAroundReport::default()
    };
    let mut attachments: BTreeMap<String, Pred> = BTreeMap::new();
    // One synthesizer for the whole pass so its template cache carries
    // across scans (duplicate boundary shapes are common in star joins).
    let mut syn = (mode == MoveAround::Synthesis).then(|| Synthesizer::new(SiaConfig::default()));

    let mut seen: BTreeSet<String> = BTreeSet::new();
    for table in tables {
        if !seen.insert(table.clone()) {
            continue; // same table scanned twice: predicates already attached
        }
        let Some(schema) = schema_of(&table) else {
            continue;
        };
        let cols: Vec<String> = schema.columns().iter().map(|c| c.name.clone()).collect();
        let colset: BTreeSet<&str> = cols.iter().map(String::as_str).collect();
        // What the local push-down rules would place at this scan anyway:
        // gathered conjuncts fully over this scan's columns.
        let local = Pred::and_all(
            report
                .gathered
                .iter()
                .map(|g| g.pred.clone())
                .filter(|p| !p.columns().is_empty() && p.over_columns(&cols)),
        );
        let entailed = closure.entailed_over(&analyzer, &cols);
        let mut new_parts: Vec<Pred> = Vec::new();
        for d in entailed.conjuncts() {
            if d.is_true() || local.conjuncts().contains(&d) {
                continue;
            }
            if !local.is_true() && analyzer.implies(&local, d) {
                continue;
            }
            new_parts.push(d.clone());
        }
        report
            .derived
            .extend(new_parts.iter().map(|p| (table.clone(), p.clone())));

        // Synthesis at blocked join boundaries: a gathered predicate that
        // straddles this scan (mentions its columns and others) with no
        // static fact covering its columns here.
        if let Some(syn) = syn.as_mut() {
            let known = Pred::and_all(
                local
                    .conjuncts()
                    .into_iter()
                    .chain(new_parts.iter())
                    .cloned(),
            );
            for g in &report.gathered.clone() {
                let gcols: BTreeSet<String> = g.pred.columns().into_iter().collect();
                let target: Vec<String> = gcols
                    .iter()
                    .filter(|c| colset.contains(c.as_str()))
                    .cloned()
                    .collect();
                if target.is_empty() || target.len() == gcols.len() {
                    continue; // no overlap, or not a boundary predicate
                }
                let statically_covered = known
                    .conjuncts()
                    .iter()
                    .any(|k| !k.columns().is_empty() && k.over_columns(&target));
                if statically_covered {
                    continue;
                }
                // Context the learner may assume: the boundary predicate
                // plus everything entailed about its *other* columns.
                let others: Vec<String> = gcols
                    .iter()
                    .filter(|c| !colset.contains(c.as_str()))
                    .cloned()
                    .collect();
                let ctx = g
                    .pred
                    .clone()
                    .and(closure.entailed_over(&analyzer, &others));
                let Ok(r) = syn.synthesize(&ctx, &target) else {
                    continue;
                };
                let Some(p) = r.predicate else { continue };
                if analyzer.statically_true(&p)
                    || (!known.is_true() && analyzer.implies(&known, &p))
                {
                    continue;
                }
                report.synthesized.push((table.clone(), p.clone()));
                new_parts.push(p);
            }
        }
        if !new_parts.is_empty() {
            attachments.insert(table.clone(), Pred::and_all(new_parts));
        }
    }

    sia_obs::add(Counter::EngineMoveDerived, report.derived.len() as u64);
    sia_obs::add(
        Counter::EngineMoveSynthesized,
        report.synthesized.len() as u64,
    );
    sia_obs::add(Counter::EngineMovePushed, report.scans_pushed() as u64);
    let plan = attach(plan, &attachments);
    (plan, report)
}

/// Plan-level lint: unreachable filters, redundant predicates, and join
/// equalities that contradict scan filters. Uses the same [`Warning`]
/// type and severity contract as predicate lint (`sia lint` exits 3 on
/// error-severity findings).
pub fn lint_plan(plan: &Plan, schema_of: &impl Fn(&str) -> Option<Schema>) -> Vec<Warning> {
    const MAX_WARNINGS: usize = 16;
    let mut out: Vec<Warning> = Vec::new();
    let push = |out: &mut Vec<Warning>, code: &'static str, message: String| {
        if out.len() < MAX_WARNINGS {
            out.push(Warning {
                code,
                message: message.replace("; ", ", "),
            });
        }
    };
    let gathered = pull_up(plan, schema_of);
    if gathered.is_empty() {
        return out;
    }
    let analyzer = analyzer_for(&scan_tables(plan), schema_of);
    let is_join_eq = |g: &GatheredPred| g.node.starts_with("HashJoin@");
    let filters_conj = Pred::and_all(
        gathered
            .iter()
            .filter(|g| !is_join_eq(g))
            .map(|g| g.pred.clone()),
    );
    let filters_sat = !analyzer.statically_unsat(&filters_conj);
    for (i, g) in gathered.iter().enumerate() {
        let rest = Pred::and_all(
            gathered
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, h)| h.pred.clone()),
        );
        if is_join_eq(g) {
            // A join equality that turns a satisfiable filter set into a
            // contradiction: the join can never produce a row.
            if filters_sat && analyzer.statically_unsat(&filters_conj.clone().and(g.pred.clone())) {
                push(
                    &mut out,
                    "plan-join-contradiction",
                    format!(
                        "join equality `{}` at {} contradicts the scan filters",
                        g.pred, g.node
                    ),
                );
            }
        } else if analyzer.statically_unsat(&g.pred) {
            push(
                &mut out,
                "plan-unreachable-filter",
                format!("filter `{}` at {} can never be TRUE", g.pred, g.node),
            );
        } else if analyzer.statically_unsat(&g.pred.clone().and(rest.clone())) {
            push(
                &mut out,
                "plan-unreachable-filter",
                format!(
                    "filter `{}` at {} can never be TRUE given the rest of the plan",
                    g.pred, g.node
                ),
            );
        } else if !rest.is_true() && analyzer.implies(&rest, &g.pred) {
            push(
                &mut out,
                "plan-redundant-predicate",
                format!(
                    "predicate `{}` at {} is implied by the rest of the plan",
                    g.pred, g.node
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_expr::{col, lit, ColumnDef, DataType};

    fn schema_of(name: &str) -> Option<Schema> {
        let cols = |ns: &[&str]| {
            Schema::new(
                ns.iter()
                    .map(|n| ColumnDef::new(*n, DataType::Integer))
                    .collect(),
            )
        };
        match name {
            "t1" => Some(cols(&["id1", "v1"])),
            "t2" => Some(cols(&["id2", "v2"])),
            "t3" => Some(cols(&["id3", "v3"])),
            "t4" => Some(cols(&["id4", "v4"])),
            _ => None,
        }
    }

    /// The snippet-1 four-table chain with the selective filter on t4.
    fn chain_plan() -> Plan {
        Plan::scan("t1")
            .hash_join(Plan::scan("t2"), "id1", "id2")
            .hash_join(Plan::scan("t3"), "id2", "id3")
            .hash_join(Plan::scan("t4"), "id3", "id4")
            .filter(col("id4").gt(lit(2020)))
    }

    #[test]
    fn pull_up_gathers_filters_and_join_keys() {
        let g = pull_up(&chain_plan(), &schema_of);
        // 1 filter conjunct + 3 join equalities.
        assert_eq!(g.len(), 4);
        assert!(g.iter().any(|x| x.node == "Filter@"));
        assert!(g.iter().filter(|x| x.node.starts_with("HashJoin@")).count() == 3);
        // Scope of the filter is the full join output.
        let f = g.iter().find(|x| x.node == "Filter@").unwrap();
        assert_eq!(f.scope.len(), 8);
    }

    #[test]
    fn static_move_around_pushes_to_every_scan() {
        let (plan, report) = move_around(chain_plan(), &schema_of, MoveAround::Static);
        // id1/id2/id3 > 2020 derived for the other three scans.
        assert_eq!(report.derived.len(), 3, "report:\n{report}");
        assert_eq!(report.scans_pushed(), 3);
        assert!(report.synthesized.is_empty());
        assert!(!report.contradiction);
        // Every derived predicate sits above its scan.
        assert_eq!(plan.filters_below_joins(), 3, "plan:\n{plan}");
    }

    #[test]
    fn off_mode_is_identity() {
        let p = chain_plan();
        let (q, report) = move_around(p.clone(), &schema_of, MoveAround::Off);
        assert_eq!(p, q);
        assert!(report.gathered.is_empty());
    }

    #[test]
    fn derived_skips_what_local_rules_already_push() {
        // The single-table conjunct id4 > 2020 is local to t4: move-around
        // must not duplicate it there.
        let (_, report) = move_around(chain_plan(), &schema_of, MoveAround::Static);
        assert!(
            report.derived.iter().all(|(t, _)| t != "t4"),
            "t4 got a redundant derived predicate: {report}"
        );
    }

    #[test]
    fn synthesis_fires_at_blocked_boundary() {
        // 2·v1 ≤ 3·v4 is outside the zone fragment, so no static fact
        // covers v1; with v4 ≤ 20 in scope the learner can still derive
        // a sound bound on v1 alone (v1 ≤ 30).
        let plan = Plan::scan("t1")
            .hash_join(Plan::scan("t4"), "id1", "id4")
            .filter(
                col("v1")
                    .mul(lit(2))
                    .le(col("v4").mul(lit(3)))
                    .and(col("v4").le(lit(20))),
            );
        let (_, st) = move_around(plan.clone(), &schema_of, MoveAround::Static);
        assert!(st.synthesized.is_empty());
        assert!(
            st.derived.iter().all(|(t, _)| t != "t1"),
            "static pass unexpectedly covered v1: {st}"
        );
        let (opt, report) = move_around(plan, &schema_of, MoveAround::Synthesis);
        let t1_learned: Vec<&Pred> = report
            .synthesized
            .iter()
            .filter(|(t, _)| t == "t1")
            .map(|(_, p)| p)
            .collect();
        assert!(
            !t1_learned.is_empty(),
            "synthesis produced nothing for t1: {report}\nplan:\n{opt}"
        );
        // Each learned predicate ranges over t1's columns only (it is
        // pushable) — the bench's solver check covers soundness.
        let t1_cols = ["id1".to_string(), "v1".to_string()];
        for p in t1_learned {
            assert!(p.over_columns(&t1_cols), "learned {p} not over t1");
        }
    }

    #[test]
    fn lint_plan_flags_unreachable_and_contradicting_joins() {
        // v1 < 0 ∧ v1 > 10 at one filter: unreachable.
        let p = Plan::scan("t1").filter(col("v1").lt(lit(0)).and(col("v1").gt(lit(10))));
        let w = lint_plan(&p, &schema_of);
        assert!(
            w.iter().any(|x| x.code == "plan-unreachable-filter"),
            "{w:?}"
        );
        assert!(w.iter().any(|x| x.severity() == "error"));

        // id1 = id2 with id1 < 0 and id2 > 10: the join contradicts the
        // scan filters.
        let p = Plan::scan("t1").filter(col("id1").lt(lit(0))).hash_join(
            Plan::scan("t2").filter(col("id2").gt(lit(10))),
            "id1",
            "id2",
        );
        let w = lint_plan(&p, &schema_of);
        assert!(
            w.iter().any(|x| x.code == "plan-join-contradiction"),
            "{w:?}"
        );
    }

    #[test]
    fn lint_plan_flags_redundant_predicates() {
        // id4 > 2020 at the top makes a weaker id4 > 2000 below redundant.
        let p = Plan::scan("t4")
            .filter(col("id4").gt(lit(2000)))
            .filter(col("id4").gt(lit(2020)));
        let w = lint_plan(&p, &schema_of);
        assert!(
            w.iter().any(|x| x.code == "plan-redundant-predicate"),
            "{w:?}"
        );
        // A clean plan lints clean.
        let ok = chain_plan();
        assert!(lint_plan(&ok, &schema_of).is_empty());
    }
}
