//! In-memory columnar tables.

use sia_expr::{DataType, Schema, Value};

/// Column storage: one typed vector per column, with an optional validity
/// mask (absent ⇒ all rows valid).
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// INTEGER / DATE / TIMESTAMP payloads.
    Int(Vec<i64>),
    /// DOUBLE payloads.
    Double(Vec<f64>),
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Double(v) => v.len(),
        }
    }

    /// True if the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row` (assuming valid).
    pub fn get(&self, row: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Double(v) => Value::Double(v[row]),
        }
    }

    fn gather(&self, rows: &[usize]) -> ColumnData {
        match self {
            ColumnData::Int(v) => ColumnData::Int(rows.iter().map(|&r| v[r]).collect()),
            ColumnData::Double(v) => ColumnData::Double(rows.iter().map(|&r| v[r]).collect()),
        }
    }
}

/// A column with its validity mask.
#[derive(Debug, Clone)]
pub struct Column {
    /// Payload vector.
    pub data: ColumnData,
    /// `Some(mask)` with `mask[row] == false` meaning NULL.
    pub validity: Option<Vec<bool>>,
}

impl Column {
    /// A non-nullable integer column.
    pub fn int(values: Vec<i64>) -> Self {
        Column {
            data: ColumnData::Int(values),
            validity: None,
        }
    }

    /// A non-nullable double column.
    pub fn double(values: Vec<f64>) -> Self {
        Column {
            data: ColumnData::Double(values),
            validity: None,
        }
    }

    /// The value at `row` (NULL-aware).
    pub fn get(&self, row: usize) -> Value {
        if let Some(mask) = &self.validity {
            if !mask[row] {
                return Value::Null;
            }
        }
        self.data.get(row)
    }

    /// Materialize the rows at the given indices.
    pub fn gather(&self, rows: &[usize]) -> Column {
        Column {
            data: self.data.gather(rows),
            validity: self
                .validity
                .as_ref()
                .map(|m| rows.iter().map(|&r| m[r]).collect()),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A materialized table: schema plus columns.
#[derive(Debug, Clone)]
pub struct Table {
    /// Column names/types (order matches `columns`).
    pub schema: Schema,
    /// Column payloads.
    pub columns: Vec<Column>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| match c.ty {
                DataType::Double => Column::double(Vec::new()),
                _ => Column::int(Vec::new()),
            })
            .collect();
        Table { schema, columns }
    }

    /// Build from row-major values (e.g. `sia-gen` samples, which encode
    /// dates as day-offset ints): `Null` becomes a validity-mask hole and
    /// integers widen to doubles in DOUBLE columns.
    ///
    /// # Panics
    /// Panics if a row's width differs from the schema.
    pub fn from_rows(schema: Schema, rows: &[Vec<Value>]) -> Self {
        let n = schema.len();
        let mut data: Vec<ColumnData> = schema
            .columns()
            .iter()
            .map(|c| match c.ty {
                DataType::Double => ColumnData::Double(Vec::with_capacity(rows.len())),
                _ => ColumnData::Int(Vec::with_capacity(rows.len())),
            })
            .collect();
        let mut validity: Vec<Vec<bool>> = vec![Vec::with_capacity(rows.len()); n];
        let mut any_null = vec![false; n];
        for row in rows {
            assert_eq!(row.len(), n, "row width mismatch");
            for (i, v) in row.iter().enumerate() {
                let valid = !matches!(v, Value::Null);
                validity[i].push(valid);
                any_null[i] |= !valid;
                match &mut data[i] {
                    ColumnData::Int(out) => out.push(match v {
                        Value::Int(x) => *x,
                        Value::Bool(b) => i64::from(*b),
                        _ => 0,
                    }),
                    ColumnData::Double(out) => out.push(match v {
                        Value::Double(x) => *x,
                        Value::Int(x) => {
                            #[allow(clippy::cast_precision_loss)]
                            {
                                *x as f64
                            }
                        }
                        _ => 0.0,
                    }),
                }
            }
        }
        let columns = data
            .into_iter()
            .zip(validity)
            .zip(any_null)
            .map(|((data, mask), has_null)| Column {
                data,
                validity: has_null.then_some(mask),
            })
            .collect();
        Table::new(schema, columns)
    }

    /// A table from schema and columns (panics on count or length
    /// mismatches).
    pub fn new(schema: Schema, columns: Vec<Column>) -> Self {
        assert_eq!(schema.len(), columns.len(), "schema/column count mismatch");
        if let Some(first) = columns.first() {
            assert!(
                columns.iter().all(|c| c.len() == first.len()),
                "ragged columns"
            );
        }
        Table { schema, columns }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// The value of `(row, column name)` (NULL-aware).
    pub fn value(&self, row: usize, name: &str) -> Value {
        self.column(name)
            .unwrap_or_else(|| panic!("no column {name:?}"))
            .get(row)
    }

    /// Materialize the given row subset.
    pub fn gather(&self, rows: &[usize]) -> Table {
        Table {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gather(rows)).collect(),
        }
    }

    /// Concatenate the columns of two equal-length tables (used by joins).
    pub fn zip(mut self, other: Table) -> Table {
        assert_eq!(self.num_rows(), other.num_rows(), "zip length mismatch");
        let mut cols = self.schema.columns().to_vec();
        cols.extend(other.schema.columns().iter().cloned());
        self.columns.extend(other.columns);
        Table {
            schema: Schema::new(cols),
            columns: self.columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_expr::ColumnDef;

    fn schema2() -> Schema {
        Schema::new(vec![
            ColumnDef::new("a", DataType::Integer),
            ColumnDef::new("d", DataType::Double),
        ])
    }

    #[test]
    fn build_and_access() {
        let t = Table::new(
            schema2(),
            vec![
                Column::int(vec![1, 2, 3]),
                Column::double(vec![0.5, 1.5, 2.5]),
            ],
        );
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value(1, "a"), Value::Int(2));
        assert_eq!(t.value(2, "d"), Value::Double(2.5));
    }

    #[test]
    fn nulls_via_validity() {
        let mut c = Column::int(vec![7, 8]);
        c.validity = Some(vec![true, false]);
        let t = Table::new(
            Schema::new(vec![ColumnDef::nullable("a", DataType::Integer)]),
            vec![c],
        );
        assert_eq!(t.value(0, "a"), Value::Int(7));
        assert_eq!(t.value(1, "a"), Value::Null);
    }

    #[test]
    fn gather() {
        let t = Table::new(
            schema2(),
            vec![
                Column::int(vec![1, 2, 3, 4]),
                Column::double(vec![0.0, 1.0, 2.0, 3.0]),
            ],
        );
        let g = t.gather(&[3, 1]);
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.value(0, "a"), Value::Int(4));
        assert_eq!(g.value(1, "d"), Value::Double(1.0));
    }

    #[test]
    fn zip_tables() {
        let t1 = Table::new(
            Schema::new(vec![ColumnDef::new("x", DataType::Integer)]),
            vec![Column::int(vec![1, 2])],
        );
        let t2 = Table::new(
            Schema::new(vec![ColumnDef::new("y", DataType::Integer)]),
            vec![Column::int(vec![10, 20])],
        );
        let z = t1.zip(t2);
        assert_eq!(z.num_rows(), 2);
        assert_eq!(z.value(1, "y"), Value::Int(20));
        assert_eq!(z.schema.len(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_panics() {
        let _ = Table::new(
            schema2(),
            vec![Column::int(vec![1]), Column::double(vec![0.0, 1.0])],
        );
    }

    #[test]
    fn empty_table() {
        let t = Table::empty(schema2());
        assert_eq!(t.num_rows(), 0);
        assert!(t.columns[0].is_empty());
    }
}
