//! An in-memory columnar execution engine with a rule-based optimizer —
//! the PostgreSQL stand-in for reproducing the paper's runtime
//! experiments (§2, §6.6).
//!
//! The engine implements exactly the mechanism the paper's speed-ups rely
//! on: hash joins whose cost tracks input cardinality, per-row filters,
//! and a **predicate push-down below join** rewrite rule that fires only
//! when a conjunct's columns all come from one join input — which is what
//! a Sia-synthesized predicate makes possible.
//!
//! * [`table`] — columnar tables with validity masks;
//! * [`compile`] — name-resolved predicate compilation for the hot loop;
//! * [`plan`] — logical plans and EXPLAIN printing;
//! * [`optimize`](mod@crate::optimize) — split/merge/push-down rules to fixed point;
//! * [`moveraround`] — plan-wide pull-up / transition / push-down with
//!   synthesis at blocked join boundaries;
//! * [`exec`] — scans, filters, hash joins, with counters;
//! * [`db`] — the [`Database`] façade: `plan` / `run` / `run_sql`.

#![warn(missing_docs)]

pub mod compile;
pub mod db;
pub mod exec;
pub mod moveraround;
pub mod optimize;
pub mod plan;
pub mod table;

pub use compile::{compile_pred, CPred};
pub use db::{Database, QueryResult};
pub use exec::{execute, ExecError, ExecStats};
pub use moveraround::{lint_plan, move_around, GatheredPred, MoveAround, MoveAroundReport};
pub use optimize::{optimize, OptimizerConfig};
pub use plan::Plan;
pub use table::{Column, ColumnData, Table};
