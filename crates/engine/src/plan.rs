//! Logical query plans and EXPLAIN rendering.

use sia_expr::Pred;
use std::fmt;

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Base-table scan.
    Scan {
        /// Table name (resolved against the database at execution).
        table: String,
    },
    /// Row filter.
    Filter {
        /// Predicate (WHERE semantics: NULL rejects).
        pred: Pred,
        /// Input plan.
        input: Box<Plan>,
    },
    /// Hash equi-join.
    HashJoin {
        /// Build side.
        left: Box<Plan>,
        /// Probe side.
        right: Box<Plan>,
        /// Join key column on the left.
        left_key: String,
        /// Join key column on the right.
        right_key: String,
    },
    /// Column projection.
    Project {
        /// Output column names.
        columns: Vec<String>,
        /// Input plan.
        input: Box<Plan>,
    },
}

impl Plan {
    /// Scan builder.
    pub fn scan(table: impl Into<String>) -> Plan {
        Plan::Scan {
            table: table.into(),
        }
    }

    /// Filter builder (TRUE predicates are dropped).
    pub fn filter(self, pred: Pred) -> Plan {
        if pred.is_true() {
            return self;
        }
        Plan::Filter {
            pred,
            input: Box::new(self),
        }
    }

    /// Hash-join builder.
    pub fn hash_join(
        self,
        right: Plan,
        left_key: impl Into<String>,
        right_key: impl Into<String>,
    ) -> Plan {
        Plan::HashJoin {
            left: Box::new(self),
            right: Box::new(right),
            left_key: left_key.into(),
            right_key: right_key.into(),
        }
    }

    /// Projection builder.
    pub fn project(self, columns: Vec<String>) -> Plan {
        Plan::Project {
            columns,
            input: Box::new(self),
        }
    }

    /// Child plans.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } => vec![],
            Plan::Filter { input, .. } | Plan::Project { input, .. } => vec![input],
            Plan::HashJoin { left, right, .. } => vec![left, right],
        }
    }

    /// Count of filter nodes *below* join nodes (push-down witness for
    /// tests and EXPLAIN assertions).
    pub fn filters_below_joins(&self) -> usize {
        fn go(p: &Plan, below_join: bool) -> usize {
            match p {
                Plan::Scan { .. } => 0,
                Plan::Filter { input, .. } => usize::from(below_join) + go(input, below_join),
                Plan::Project { input, .. } => go(input, below_join),
                Plan::HashJoin { left, right, .. } => go(left, true) + go(right, true),
            }
        }
        go(self, false)
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Plan::Scan { table } => writeln!(f, "{pad}SeqScan on {table}"),
            Plan::Filter { pred, input } => {
                writeln!(f, "{pad}Filter ({pred})")?;
                input.fmt_indent(f, indent + 1)
            }
            Plan::HashJoin {
                left,
                right,
                left_key,
                right_key,
            } => {
                writeln!(f, "{pad}HashJoin ({left_key} = {right_key})")?;
                left.fmt_indent(f, indent + 1)?;
                right.fmt_indent(f, indent + 1)
            }
            Plan::Project { columns, input } => {
                writeln!(f, "{pad}Project ({})", columns.join(", "))?;
                input.fmt_indent(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_expr::{col, lit};

    #[test]
    fn builders_and_display() {
        let p = Plan::scan("lineitem")
            .filter(col("l_shipdate").lt(lit(100)))
            .hash_join(Plan::scan("orders"), "l_orderkey", "o_orderkey")
            .filter(col("o_orderdate").lt(lit(0)));
        let s = p.to_string();
        assert!(s.contains("HashJoin (l_orderkey = o_orderkey)"));
        assert!(s.contains("SeqScan on lineitem"));
        assert!(s.contains("Filter (l_shipdate < 100)"));
    }

    #[test]
    fn true_filter_dropped() {
        let p = Plan::scan("t").filter(Pred::true_());
        assert_eq!(p, Plan::scan("t"));
    }

    #[test]
    fn filters_below_joins_counts() {
        let pushed =
            Plan::scan("a")
                .filter(col("x").lt(lit(1)))
                .hash_join(Plan::scan("b"), "k", "k");
        assert_eq!(pushed.filters_below_joins(), 1);
        let unpushed = Plan::scan("a")
            .hash_join(Plan::scan("b"), "k", "k")
            .filter(col("x").lt(lit(1)));
        assert_eq!(unpushed.filters_below_joins(), 0);
    }
}
