//! Predicate compilation: resolve column names to column indices once, so
//! the per-row evaluation loop does no string hashing.

use crate::table::Table;
use sia_expr::{ArithOp, CmpOp, DataType, Expr, Pred, Schema};

/// A compiled arithmetic expression over column indices.
#[derive(Debug, Clone)]
pub enum CExpr {
    /// Column payload by index.
    Col(usize),
    /// Integer constant (dates already lowered to day offsets).
    ConstI(i64),
    /// Double constant.
    ConstF(f64),
    /// Binary arithmetic.
    Bin(ArithOp, Box<CExpr>, Box<CExpr>),
}

/// A compiled predicate over column indices.
#[derive(Debug, Clone)]
pub enum CPred {
    /// Constant.
    Lit(bool),
    /// Comparison.
    Cmp(CmpOp, CExpr, CExpr),
    /// Conjunction.
    And(Vec<CPred>),
    /// Disjunction.
    Or(Vec<CPred>),
    /// Negation.
    Not(Box<CPred>),
}

/// Compile-time error: a referenced column is missing from the schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownColumn(pub String);

impl std::fmt::Display for UnknownColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown column {:?}", self.0)
    }
}

impl std::error::Error for UnknownColumn {}

/// Compile an expression against a schema.
pub fn compile_expr(e: &Expr, schema: &Schema) -> Result<CExpr, UnknownColumn> {
    Ok(match e {
        Expr::Column(c) => CExpr::Col(schema.index_of(c).ok_or_else(|| UnknownColumn(c.clone()))?),
        Expr::Int(v) => CExpr::ConstI(*v),
        Expr::Double(v) => CExpr::ConstF(*v),
        Expr::Date(d) => CExpr::ConstI(d.to_days()),
        Expr::Binary { op, lhs, rhs } => CExpr::Bin(
            *op,
            Box::new(compile_expr(lhs, schema)?),
            Box::new(compile_expr(rhs, schema)?),
        ),
    })
}

/// Compile a predicate against a schema.
pub fn compile_pred(p: &Pred, schema: &Schema) -> Result<CPred, UnknownColumn> {
    Ok(match p {
        Pred::Lit(b) => CPred::Lit(*b),
        Pred::Cmp { op, lhs, rhs } => {
            CPred::Cmp(*op, compile_expr(lhs, schema)?, compile_expr(rhs, schema)?)
        }
        Pred::And(ps) => CPred::And(
            ps.iter()
                .map(|q| compile_pred(q, schema))
                .collect::<Result<_, _>>()?,
        ),
        Pred::Or(ps) => CPred::Or(
            ps.iter()
                .map(|q| compile_pred(q, schema))
                .collect::<Result<_, _>>()?,
        ),
        Pred::Not(q) => CPred::Not(Box::new(compile_pred(q, schema)?)),
    })
}

/// Scalar result of compiled evaluation; `None` = NULL.
type Scalar = Option<ScalarVal>;

#[derive(Debug, Clone, Copy)]
enum ScalarVal {
    I(i64),
    F(f64),
}

impl CExpr {
    #[inline]
    fn eval(&self, table: &Table, row: usize) -> Scalar {
        match self {
            CExpr::Col(i) => {
                let col = &table.columns[*i];
                if let Some(mask) = &col.validity {
                    if !mask[row] {
                        return None;
                    }
                }
                Some(match &col.data {
                    crate::table::ColumnData::Int(v) => ScalarVal::I(v[row]),
                    crate::table::ColumnData::Double(v) => ScalarVal::F(v[row]),
                })
            }
            CExpr::ConstI(v) => Some(ScalarVal::I(*v)),
            CExpr::ConstF(v) => Some(ScalarVal::F(*v)),
            CExpr::Bin(op, l, r) => {
                let (l, r) = (l.eval(table, row)?, r.eval(table, row)?);
                match (l, r) {
                    (ScalarVal::I(a), ScalarVal::I(b)) => match op {
                        ArithOp::Add => Some(ScalarVal::I(a.saturating_add(b))),
                        ArithOp::Sub => Some(ScalarVal::I(a.saturating_sub(b))),
                        ArithOp::Mul => Some(ScalarVal::I(a.saturating_mul(b))),
                        ArithOp::Div => {
                            if b == 0 {
                                None
                            } else {
                                Some(ScalarVal::I(a.wrapping_div(b)))
                            }
                        }
                    },
                    (a, b) => {
                        let (x, y) = (a.as_f64(), b.as_f64());
                        let v = match op {
                            ArithOp::Add => x + y,
                            ArithOp::Sub => x - y,
                            ArithOp::Mul => x * y,
                            ArithOp::Div => {
                                if y == 0.0 {
                                    return None;
                                }
                                x / y
                            }
                        };
                        Some(ScalarVal::F(v))
                    }
                }
            }
        }
    }
}

impl ScalarVal {
    #[inline]
    fn as_f64(self) -> f64 {
        match self {
            ScalarVal::I(v) => v as f64,
            ScalarVal::F(v) => v,
        }
    }
}

impl CPred {
    /// Three-valued evaluation of one row.
    #[inline]
    pub fn eval(&self, table: &Table, row: usize) -> Option<bool> {
        match self {
            CPred::Lit(b) => Some(*b),
            CPred::Cmp(op, l, r) => {
                let (l, r) = (l.eval(table, row)?, r.eval(table, row)?);
                let ord = match (l, r) {
                    (ScalarVal::I(a), ScalarVal::I(b)) => a.cmp(&b),
                    (a, b) => a.as_f64().partial_cmp(&b.as_f64())?,
                };
                Some(op.eval_ord(ord))
            }
            CPred::And(ps) => {
                let mut unknown = false;
                for p in ps {
                    match p.eval(table, row) {
                        Some(false) => return Some(false),
                        None => unknown = true,
                        Some(true) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(true)
                }
            }
            CPred::Or(ps) => {
                let mut unknown = false;
                for p in ps {
                    match p.eval(table, row) {
                        Some(true) => return Some(true),
                        None => unknown = true,
                        Some(false) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(false)
                }
            }
            CPred::Not(p) => p.eval(table, row).map(|b| !b),
        }
    }

    /// Rows of the table the predicate accepts (WHERE semantics: NULL
    /// rejects).
    pub fn filter(&self, table: &Table) -> Vec<usize> {
        (0..table.num_rows())
            .filter(|&row| self.eval(table, row) == Some(true))
            .collect()
    }

    /// The fraction of rows accepted (selectivity; 1.0 on empty input).
    pub fn selectivity(&self, table: &Table) -> f64 {
        let n = table.num_rows();
        if n == 0 {
            return 1.0;
        }
        self.filter(table).len() as f64 / n as f64
    }
}

/// Verify the predicate's columns exist and yield comparable types
/// (lightweight semantic check used by the planner).
pub fn typecheck(p: &Pred, schema: &Schema) -> Result<(), UnknownColumn> {
    for c in p.columns() {
        if schema.index_of(&c).is_none() {
            return Err(UnknownColumn(c));
        }
    }
    Ok(())
}

/// Result type helper used by the planner to decide join key types.
pub fn column_type(schema: &Schema, name: &str) -> Option<DataType> {
    schema.column(name).map(|c| c.ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, Table};
    use sia_expr::ColumnDef;
    use sia_sql::parse_predicate;

    fn table() -> Table {
        Table::new(
            Schema::new(vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("b", DataType::Integer),
                ColumnDef::new("d", DataType::Double),
            ]),
            vec![
                Column::int(vec![1, 5, 10, -3]),
                Column::int(vec![2, 2, 2, 2]),
                Column::double(vec![0.5, 4.5, 10.5, -2.5]),
            ],
        )
    }

    #[test]
    fn filter_rows() {
        let t = table();
        let p = compile_pred(&parse_predicate("a > b").unwrap(), &t.schema).unwrap();
        assert_eq!(p.filter(&t), vec![1, 2]);
        assert_eq!(p.selectivity(&t), 0.5);
    }

    #[test]
    fn arithmetic_and_doubles() {
        let t = table();
        let p = compile_pred(
            &parse_predicate("a + b * 2 >= 9 AND d < 11").unwrap(),
            &t.schema,
        )
        .unwrap();
        assert_eq!(p.filter(&t), vec![1, 2]);
    }

    #[test]
    fn null_rejects_in_where() {
        let mut t = table();
        t.columns[0].validity = Some(vec![true, false, true, true]);
        let p = compile_pred(&parse_predicate("a > 0").unwrap(), &t.schema).unwrap();
        // row 1 (a NULL) rejected even though stored payload is 5.
        assert_eq!(p.filter(&t), vec![0, 2]);
    }

    #[test]
    fn unknown_column_errors() {
        let t = table();
        assert!(compile_pred(&parse_predicate("zzz > 0").unwrap(), &t.schema).is_err());
        assert!(typecheck(&parse_predicate("zzz > 0").unwrap(), &t.schema).is_err());
        assert!(typecheck(&parse_predicate("a > 0").unwrap(), &t.schema).is_ok());
    }

    #[test]
    fn division_semantics() {
        let t = table();
        // a / 0 is NULL → rejected.
        let p = compile_pred(&parse_predicate("a / 0 > 0").unwrap(), &t.schema).unwrap();
        assert!(p.filter(&t).is_empty());
        // Integer division truncates.
        let q = compile_pred(&parse_predicate("a / 2 = 2").unwrap(), &t.schema).unwrap();
        assert_eq!(q.filter(&t), vec![1]); // 5/2 = 2
    }

    #[test]
    fn matches_interpreted_eval() {
        use std::collections::HashMap;
        let t = table();
        let pred = parse_predicate("a - b < 3 OR d > 4.0").unwrap();
        let c = compile_pred(&pred, &t.schema).unwrap();
        for row in 0..t.num_rows() {
            let m: HashMap<String, sia_expr::Value> = ["a", "b", "d"]
                .iter()
                .map(|n| (n.to_string(), t.value(row, n)))
                .collect();
            assert_eq!(c.eval(&t, row), sia_expr::eval_pred(&pred, &m), "row {row}");
        }
    }
}

/// Batch (vectorized) evaluation: integer-only expressions evaluate whole
/// columns at a time, cutting the per-row interpretive overhead that
/// row-at-a-time `eval` pays. Falls back to row-wise for DOUBLE columns.
mod batch {
    use super::*;
    use crate::table::ColumnData;

    /// A column vector of evaluated values plus validity (None = all valid).
    pub(super) struct IntVec {
        pub values: Vec<i64>,
        pub validity: Option<Vec<bool>>,
    }

    impl CExpr {
        /// Evaluate over all rows at once; `None` when the expression
        /// touches non-integer columns (caller falls back to row-wise).
        pub(super) fn eval_batch(&self, table: &Table) -> Option<IntVec> {
            let n = table.num_rows();
            match self {
                CExpr::Col(i) => {
                    let col = &table.columns[*i];
                    let ColumnData::Int(v) = &col.data else {
                        return None;
                    };
                    Some(IntVec {
                        values: v.clone(),
                        validity: col.validity.clone(),
                    })
                }
                CExpr::ConstI(c) => Some(IntVec {
                    values: vec![*c; n],
                    validity: None,
                }),
                CExpr::ConstF(_) => None,
                CExpr::Bin(op, l, r) => {
                    let mut a = l.eval_batch(table)?;
                    let b = r.eval_batch(table)?;
                    let validity = merge_validity(a.validity.take(), b.validity, |m| m);
                    let mut values = a.values;
                    match op {
                        ArithOp::Add => {
                            for (x, y) in values.iter_mut().zip(&b.values) {
                                *x = x.saturating_add(*y);
                            }
                            Some(IntVec { values, validity })
                        }
                        ArithOp::Sub => {
                            for (x, y) in values.iter_mut().zip(&b.values) {
                                *x = x.saturating_sub(*y);
                            }
                            Some(IntVec { values, validity })
                        }
                        ArithOp::Mul => {
                            for (x, y) in values.iter_mut().zip(&b.values) {
                                *x = x.saturating_mul(*y);
                            }
                            Some(IntVec { values, validity })
                        }
                        ArithOp::Div => {
                            // Division by zero yields NULL row-wise; the
                            // extra mask bookkeeping isn't worth the rare
                            // case — fall back.
                            None
                        }
                    }
                }
            }
        }
    }

    fn merge_validity(
        a: Option<Vec<bool>>,
        b: Option<Vec<bool>>,
        f: impl Fn(Vec<bool>) -> Vec<bool>,
    ) -> Option<Vec<bool>> {
        match (a, b) {
            (None, None) => None,
            (Some(m), None) | (None, Some(m)) => Some(f(m)),
            (Some(mut m), Some(o)) => {
                for (x, y) in m.iter_mut().zip(&o) {
                    *x = *x && *y;
                }
                Some(m)
            }
        }
    }

    /// Tri-state row mask: `Some(true/false)` decided, `None` = NULL.
    pub(super) fn pred_mask(p: &CPred, table: &Table) -> Option<Vec<Option<bool>>> {
        let n = table.num_rows();
        match p {
            CPred::Lit(b) => Some(vec![Some(*b); n]),
            CPred::Cmp(op, l, r) => {
                let a = l.eval_batch(table)?;
                let b = r.eval_batch(table)?;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let null = a.validity.as_ref().map(|m| !m[i]).unwrap_or(false)
                        || b.validity.as_ref().map(|m| !m[i]).unwrap_or(false);
                    out.push(if null {
                        None
                    } else {
                        Some(op.eval_ord(a.values[i].cmp(&b.values[i])))
                    });
                }
                Some(out)
            }
            CPred::And(ps) => {
                let mut acc = vec![Some(true); n];
                for q in ps {
                    let m = pred_mask(q, table)?;
                    for (x, y) in acc.iter_mut().zip(&m) {
                        *x = match (*x, y) {
                            (Some(false), _) | (_, Some(false)) => Some(false),
                            (Some(true), v) => *v,
                            (None, Some(true) | None) => None,
                        };
                    }
                }
                Some(acc)
            }
            CPred::Or(ps) => {
                let mut acc = vec![Some(false); n];
                for q in ps {
                    let m = pred_mask(q, table)?;
                    for (x, y) in acc.iter_mut().zip(&m) {
                        *x = match (*x, y) {
                            (Some(true), _) | (_, Some(true)) => Some(true),
                            (Some(false), v) => *v,
                            (None, Some(false) | None) => None,
                        };
                    }
                }
                Some(acc)
            }
            CPred::Not(q) => {
                let m = pred_mask(q, table)?;
                Some(m.into_iter().map(|v| v.map(|b| !b)).collect())
            }
        }
    }
}

impl CPred {
    /// Vectorized variant of [`CPred::filter`]: whole-column evaluation
    /// for integer-only predicates, row-wise fallback otherwise.
    pub fn filter_vectorized(&self, table: &Table) -> Vec<usize> {
        match batch::pred_mask(self, table) {
            Some(mask) => mask
                .iter()
                .enumerate()
                .filter(|(_, v)| **v == Some(true))
                .map(|(i, _)| i)
                .collect(),
            None => self.filter(table),
        }
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::table::{Column, Table};
    use sia_expr::{ColumnDef, DataType, Schema};
    use sia_sql::parse_predicate;

    fn table() -> Table {
        Table::new(
            Schema::new(vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("b", DataType::Integer),
                ColumnDef::new("d", DataType::Double),
            ]),
            vec![
                Column::int(vec![1, 5, 10, -3, 7]),
                Column::int(vec![2, 2, 2, 2, 7]),
                Column::double(vec![0.5, 4.5, 10.5, -2.5, 0.0]),
            ],
        )
    }

    #[test]
    fn vectorized_matches_rowwise() {
        let t = table();
        for sql in [
            "a > b",
            "a + b * 2 >= 9",
            "a - b < 3 OR a = 7",
            "NOT (a < b) AND a <> 10",
            "a > b AND d < 5.0", // double → fallback path
            "a / 2 = 2",         // division → fallback path
        ] {
            let p = compile_pred(&parse_predicate(sql).unwrap(), &t.schema).unwrap();
            assert_eq!(p.filter_vectorized(&t), p.filter(&t), "mismatch for {sql}");
        }
    }

    #[test]
    fn vectorized_null_handling() {
        let mut t = table();
        t.columns[0].validity = Some(vec![true, false, true, true, false]);
        for sql in ["a > 0", "a > b OR b = 2", "a = a"] {
            let p = compile_pred(&parse_predicate(sql).unwrap(), &t.schema).unwrap();
            assert_eq!(p.filter_vectorized(&t), p.filter(&t), "mismatch for {sql}");
        }
    }
}
