//! Plan execution: sequential scans, compiled-predicate filters, and hash
//! equi-joins over the columnar tables.

use crate::compile::{compile_pred, UnknownColumn};
use crate::db::Database;
use crate::plan::Plan;
use crate::table::{ColumnData, Table};
use sia_expr::Schema;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Counters gathered during execution (the cost signals the evaluation in
/// §6.6 reasons about: join input sizes vs filter work).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows read from base tables.
    pub rows_scanned: u64,
    /// Rows evaluated by filters.
    pub rows_filtered: u64,
    /// Rows entering hash joins (build + probe).
    pub join_input_rows: u64,
    /// Rows produced by joins.
    pub join_output_rows: u64,
}

/// Execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Unknown base table.
    UnknownTable(String),
    /// Unknown column in a predicate/projection/join key.
    UnknownColumn(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<UnknownColumn> for ExecError {
    fn from(e: UnknownColumn) -> Self {
        ExecError::UnknownColumn(e.0)
    }
}

/// Execute a plan against a database, returning the result table, timing,
/// and counters.
pub fn execute(plan: &Plan, db: &Database) -> Result<(Table, Duration, ExecStats), ExecError> {
    let mut stats = ExecStats::default();
    let start = Instant::now();
    let table = run(plan, db, &mut stats)?;
    Ok((table, start.elapsed(), stats))
}

fn run(plan: &Plan, db: &Database, stats: &mut ExecStats) -> Result<Table, ExecError> {
    match plan {
        Plan::Scan { table } => {
            let t = db
                .table(table)
                .ok_or_else(|| ExecError::UnknownTable(table.clone()))?;
            stats.rows_scanned += t.num_rows() as u64;
            Ok(t.clone())
        }
        Plan::Filter { pred, input } => {
            let t = run(input, db, stats)?;
            stats.rows_filtered += t.num_rows() as u64;
            let compiled = compile_pred(pred, &t.schema)?;
            let rows = compiled.filter_vectorized(&t);
            Ok(t.gather(&rows))
        }
        Plan::HashJoin {
            left,
            right,
            left_key,
            right_key,
        } => {
            let lt = run(left, db, stats)?;
            let rt = run(right, db, stats)?;
            stats.join_input_rows += (lt.num_rows() + rt.num_rows()) as u64;
            let out = hash_join(&lt, &rt, left_key, right_key)?;
            stats.join_output_rows += out.num_rows() as u64;
            Ok(out)
        }
        Plan::Project { columns, input } => {
            let t = run(input, db, stats)?;
            let mut defs = Vec::with_capacity(columns.len());
            let mut cols = Vec::with_capacity(columns.len());
            for name in columns {
                let idx = t
                    .schema
                    .index_of(name)
                    .ok_or_else(|| ExecError::UnknownColumn(name.clone()))?;
                defs.push(t.schema.columns()[idx].clone());
                cols.push(t.columns[idx].clone());
            }
            Ok(Table::new(Schema::new(defs), cols))
        }
    }
}

/// Hash join on integer keys. Builds on the smaller input and preserves
/// (probe-side-major) row order.
fn hash_join(
    left: &Table,
    right: &Table,
    left_key: &str,
    right_key: &str,
) -> Result<Table, ExecError> {
    let lk = key_column(left, left_key)?;
    let rk = key_column(right, right_key)?;
    // Build on the smaller side.
    let (build, probe, build_keys, probe_keys, build_is_left) =
        if left.num_rows() <= right.num_rows() {
            (left, right, lk, rk, true)
        } else {
            (right, left, rk, lk, false)
        };
    let mut index: HashMap<i64, Vec<usize>> = HashMap::with_capacity(build.num_rows());
    for (row, key) in build_keys.iter().enumerate() {
        if let Some(k) = key {
            index.entry(*k).or_default().push(row);
        }
    }
    let mut build_rows = Vec::new();
    let mut probe_rows = Vec::new();
    for (prow, key) in probe_keys.iter().enumerate() {
        let Some(k) = key else { continue };
        if let Some(matches) = index.get(k) {
            for &brow in matches {
                build_rows.push(brow);
                probe_rows.push(prow);
            }
        }
    }
    let build_out = build.gather(&build_rows);
    let probe_out = probe.gather(&probe_rows);
    Ok(if build_is_left {
        build_out.zip(probe_out)
    } else {
        probe_out.zip(build_out)
    })
}

/// Extract an integer key column as `Option<i64>` per row (None = NULL;
/// NULL keys never join, matching SQL semantics).
fn key_column(t: &Table, name: &str) -> Result<Vec<Option<i64>>, ExecError> {
    let col = t
        .column(name)
        .ok_or_else(|| ExecError::UnknownColumn(name.to_string()))?;
    let ColumnData::Int(values) = &col.data else {
        return Err(ExecError::UnknownColumn(format!(
            "{name} is not an integer join key"
        )));
    };
    Ok(values
        .iter()
        .enumerate()
        .map(|(i, v)| match &col.validity {
            Some(mask) if !mask[i] => None,
            _ => Some(*v),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;
    use sia_expr::{col, lit, ColumnDef, DataType};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(
            "orders",
            Table::new(
                Schema::new(vec![
                    ColumnDef::new("o_orderkey", DataType::Integer),
                    ColumnDef::new("o_orderdate", DataType::Date),
                ]),
                vec![
                    Column::int(vec![1, 2, 3, 4]),
                    Column::int(vec![-10, 5, -3, 20]),
                ],
            ),
        );
        db.insert(
            "lineitem",
            Table::new(
                Schema::new(vec![
                    ColumnDef::new("l_orderkey", DataType::Integer),
                    ColumnDef::new("l_shipdate", DataType::Date),
                ]),
                vec![
                    Column::int(vec![1, 1, 2, 3, 5]),
                    Column::int(vec![0, 7, 9, 2, 100]),
                ],
            ),
        );
        db
    }

    #[test]
    fn scan_and_filter() {
        let db = db();
        let plan = Plan::scan("orders").filter(col("o_orderdate").lt(lit(0)));
        let (t, _, stats) = execute(&plan, &db).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(stats.rows_scanned, 4);
        assert_eq!(stats.rows_filtered, 4);
    }

    #[test]
    fn hash_join_basic() {
        let db = db();
        let plan =
            Plan::scan("lineitem").hash_join(Plan::scan("orders"), "l_orderkey", "o_orderkey");
        let (t, _, stats) = execute(&plan, &db).unwrap();
        // keys 1(×2), 2, 3 match; 5 does not.
        assert_eq!(t.num_rows(), 4);
        assert_eq!(stats.join_input_rows, 9);
        assert_eq!(stats.join_output_rows, 4);
        // Output schema holds both tables' columns.
        assert!(t.column("l_shipdate").is_some());
        assert!(t.column("o_orderdate").is_some());
        // Join key equality holds on every output row.
        for row in 0..t.num_rows() {
            assert_eq!(t.value(row, "l_orderkey"), t.value(row, "o_orderkey"));
        }
    }

    #[test]
    fn join_then_filter_equals_filter_then_join() {
        let db = db();
        let after = Plan::scan("lineitem")
            .hash_join(Plan::scan("orders"), "l_orderkey", "o_orderkey")
            .filter(col("l_shipdate").lt(lit(8)));
        let before = Plan::scan("lineitem")
            .filter(col("l_shipdate").lt(lit(8)))
            .hash_join(Plan::scan("orders"), "l_orderkey", "o_orderkey");
        let (ta, _, _) = execute(&after, &db).unwrap();
        let (tb, _, _) = execute(&before, &db).unwrap();
        assert_eq!(ta.num_rows(), tb.num_rows());
        // Same multiset of (l_orderkey, l_shipdate) pairs.
        let collect = |t: &Table| {
            let mut v: Vec<(i64, i64)> = (0..t.num_rows())
                .map(|r| {
                    (
                        t.value(r, "l_orderkey").as_i64().unwrap(),
                        t.value(r, "l_shipdate").as_i64().unwrap(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(collect(&ta), collect(&tb));
    }

    #[test]
    fn projection() {
        let db = db();
        let plan = Plan::scan("orders").project(vec!["o_orderdate".to_string()]);
        let (t, _, _) = execute(&plan, &db).unwrap();
        assert_eq!(t.schema.len(), 1);
        assert_eq!(t.num_rows(), 4);
    }

    #[test]
    fn null_keys_do_not_join() {
        let mut db = db();
        let mut t = db.table("lineitem").unwrap().clone();
        t.columns[0].validity = Some(vec![true, false, true, true, true]);
        db.insert("lineitem2", t);
        let plan =
            Plan::scan("lineitem2").hash_join(Plan::scan("orders"), "l_orderkey", "o_orderkey");
        let (out, _, _) = execute(&plan, &db).unwrap();
        assert_eq!(out.num_rows(), 3); // one of the key-1 rows is NULL now
    }

    #[test]
    fn errors() {
        let db = db();
        assert_eq!(
            execute(&Plan::scan("nope"), &db).unwrap_err(),
            ExecError::UnknownTable("nope".to_string())
        );
        let plan = Plan::scan("orders").filter(col("zzz").lt(lit(0)));
        assert!(matches!(
            execute(&plan, &db).unwrap_err(),
            ExecError::UnknownColumn(_)
        ));
    }
}
