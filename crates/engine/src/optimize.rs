//! Rule-based plan optimizer.
//!
//! The rule that matters for the paper is **predicate push-down below
//! joins** (Fig 1): a conjunct whose columns all come from one join input
//! moves below the join, shrinking the join's input. Supporting rules
//! split AND chains into individual conjuncts, merge adjacent filters,
//! and drop trivial ones. Rules run to a fixed point.

use crate::moveraround::MoveAround;
use crate::plan::Plan;
use sia_expr::{Pred, Schema};
use std::collections::BTreeSet;

/// Which rewrite rules to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Enable predicate push-down below joins. Turning this off is the
    /// ablation that shows where Sia's runtime win comes from.
    pub pushdown: bool,
    /// Plan-wide predicate move-around mode (runs as a pre-pass before
    /// the local rules; see [`crate::moveraround`]).
    pub move_around: MoveAround,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            pushdown: true,
            move_around: MoveAround::Off,
        }
    }
}

/// Resolve the output columns of a plan (schema oracle for push-down
/// decisions). `table_schema` maps a table name to its column names.
fn output_columns(plan: &Plan, table_schema: &impl Fn(&str) -> Vec<String>) -> BTreeSet<String> {
    match plan {
        Plan::Scan { table } => table_schema(table).into_iter().collect(),
        Plan::Filter { input, .. } => output_columns(input, table_schema),
        Plan::HashJoin { left, right, .. } => {
            let mut s = output_columns(left, table_schema);
            s.extend(output_columns(right, table_schema));
            s
        }
        Plan::Project { columns, .. } => columns.iter().cloned().collect(),
    }
}

/// Optimize a plan to a fixed point.
pub fn optimize(
    plan: Plan,
    table_schema: &impl Fn(&str) -> Vec<String>,
    config: OptimizerConfig,
) -> Plan {
    let mut current = plan;
    for _ in 0..64 {
        let next = pass(current.clone(), table_schema, config);
        if next == current {
            return next;
        }
        current = next;
    }
    current
}

fn pass(plan: Plan, table_schema: &impl Fn(&str) -> Vec<String>, config: OptimizerConfig) -> Plan {
    match plan {
        Plan::Scan { .. } => plan,
        Plan::Project { columns, input } => Plan::Project {
            columns,
            input: Box::new(pass(*input, table_schema, config)),
        },
        Plan::HashJoin {
            left,
            right,
            left_key,
            right_key,
        } => Plan::HashJoin {
            left: Box::new(pass(*left, table_schema, config)),
            right: Box::new(pass(*right, table_schema, config)),
            left_key,
            right_key,
        },
        Plan::Filter { pred, input } => {
            let input = pass(*input, table_schema, config);
            // MergeFilters: Filter(p, Filter(q, x)) → Filter(p ∧ q, x).
            let (pred, input) = match input {
                Plan::Filter {
                    pred: inner,
                    input: deeper,
                } => (pred.and(inner), *deeper),
                other => (pred, other),
            };
            if pred.is_true() {
                return input;
            }
            // PushFilterThroughJoin: route conjuncts to the side that
            // provides all of their columns.
            if config.pushdown {
                if let Plan::HashJoin {
                    left,
                    right,
                    left_key,
                    right_key,
                } = input
                {
                    let left_cols = output_columns(&left, table_schema);
                    let right_cols = output_columns(&right, table_schema);
                    let mut left_preds = Vec::new();
                    let mut right_preds = Vec::new();
                    let mut keep = Vec::new();
                    for conj in pred.conjuncts() {
                        let cols: BTreeSet<String> = conj.columns().into_iter().collect();
                        if !cols.is_empty() && cols.is_subset(&left_cols) {
                            left_preds.push(conj.clone());
                        } else if !cols.is_empty() && cols.is_subset(&right_cols) {
                            right_preds.push(conj.clone());
                        } else {
                            keep.push(conj.clone());
                        }
                    }
                    if !left_preds.is_empty() || !right_preds.is_empty() {
                        let new_left = left.filter(Pred::and_all(left_preds));
                        let new_right = right.filter(Pred::and_all(right_preds));
                        let joined = new_left.hash_join(new_right, left_key, right_key);
                        return pass(joined.filter(Pred::and_all(keep)), table_schema, config);
                    }
                    return Plan::Filter {
                        pred,
                        input: Box::new(Plan::HashJoin {
                            left,
                            right,
                            left_key,
                            right_key,
                        }),
                    };
                }
            }
            Plan::Filter {
                pred,
                input: Box::new(input),
            }
        }
    }
}

/// Helper: column names of a [`Schema`].
pub fn schema_columns(schema: &Schema) -> Vec<String> {
    schema.columns().iter().map(|c| c.name.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_expr::{col, lit};

    fn schemas(name: &str) -> Vec<String> {
        match name {
            "lineitem" => vec!["l_orderkey".into(), "l_shipdate".into()],
            "orders" => vec!["o_orderkey".into(), "o_orderdate".into()],
            _ => vec![],
        }
    }

    #[test]
    fn pushes_single_table_conjuncts() {
        let plan = Plan::scan("lineitem")
            .hash_join(Plan::scan("orders"), "l_orderkey", "o_orderkey")
            .filter(
                col("l_shipdate")
                    .lt(lit(100))
                    .and(col("o_orderdate").lt(lit(0)))
                    .and(col("l_shipdate").sub(col("o_orderdate")).lt(lit(20))),
            );
        let opt = optimize(plan, &schemas, OptimizerConfig::default());
        // Two conjuncts pushed below the join; the cross-table one stays.
        assert_eq!(opt.filters_below_joins(), 2, "plan:\n{opt}");
        let s = opt.to_string();
        assert!(s.contains("Filter (l_shipdate - o_orderdate < 20)"));
    }

    #[test]
    fn pushdown_disabled() {
        let plan = Plan::scan("lineitem")
            .hash_join(Plan::scan("orders"), "l_orderkey", "o_orderkey")
            .filter(col("l_shipdate").lt(lit(100)));
        let config = OptimizerConfig {
            pushdown: false,
            ..OptimizerConfig::default()
        };
        let opt = optimize(plan, &schemas, config);
        assert_eq!(opt.filters_below_joins(), 0);
    }

    #[test]
    fn merges_adjacent_filters() {
        let plan = Plan::scan("lineitem")
            .filter(col("l_shipdate").lt(lit(100)))
            .filter(col("l_orderkey").gt(lit(0)));
        let opt = optimize(plan, &schemas, OptimizerConfig::default());
        match &opt {
            Plan::Filter { pred, input } => {
                assert_eq!(pred.conjuncts().len(), 2);
                assert!(matches!(**input, Plan::Scan { .. }));
            }
            other => panic!("expected single merged filter, got {other}"),
        }
    }

    #[test]
    fn fixed_point_reached() {
        let plan = Plan::scan("lineitem")
            .hash_join(Plan::scan("orders"), "l_orderkey", "o_orderkey")
            .filter(col("l_shipdate").lt(lit(100)));
        let opt1 = optimize(plan, &schemas, OptimizerConfig::default());
        let opt2 = optimize(opt1.clone(), &schemas, OptimizerConfig::default());
        assert_eq!(opt1, opt2);
    }
}
