//! The database: named tables, query planning, and the run-a-SQL-string
//! entry point used by the benchmark harness.

use crate::exec::{execute, ExecError, ExecStats};
use crate::moveraround::{move_around, MoveAroundReport};
use crate::optimize::{optimize, OptimizerConfig};
use crate::plan::Plan;
use crate::table::Table;
use sia_expr::{Pred, Schema};
use sia_sql::{Query, SelectList};
use std::collections::HashMap;
use std::time::Duration;

/// A collection of named in-memory tables.
#[derive(Debug, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
}

/// The result of running one query.
#[derive(Debug)]
pub struct QueryResult {
    /// Output rows.
    pub table: Table,
    /// Wall-clock execution time (excludes planning).
    pub elapsed: Duration,
    /// Execution counters.
    pub stats: ExecStats,
    /// The optimized plan that ran.
    pub plan: Plan,
    /// What the move-around pass did (empty when the mode is `Off`).
    pub moved: MoveAroundReport,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Register (or replace) a table.
    pub fn insert(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Table names.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    fn columns_of(&self, table: &str) -> Vec<String> {
        self.tables
            .get(table)
            .map(|t| t.schema.columns().iter().map(|c| c.name.clone()).collect())
            .unwrap_or_default()
    }

    /// Schema of a registered table (oracle for the move-around pass).
    pub fn schema_of(&self, table: &str) -> Option<Schema> {
        self.tables.get(table).map(|t| t.schema.clone())
    }

    /// Which table (among the query's FROM list) owns a column.
    fn owner_of(&self, tables: &[String], col: &str) -> Option<String> {
        if let Some((t, c)) = col.split_once('.') {
            if tables.iter().any(|n| n == t) && self.columns_of(t).iter().any(|n| n == c) {
                return Some(t.to_string());
            }
            return None;
        }
        let mut hit = None;
        for t in tables {
            if self.columns_of(t).iter().any(|n| n == col) {
                if hit.is_some() {
                    return None; // ambiguous
                }
                hit = Some(t.clone());
            }
        }
        hit
    }

    /// Build a logical plan for a query: left-deep join tree over the FROM
    /// list using equi-join conjuncts from the WHERE clause, remaining
    /// predicate as a filter on top, then the projection.
    pub fn plan(&self, query: &Query) -> Result<Plan, ExecError> {
        for t in &query.tables {
            if !self.tables.contains_key(t) {
                return Err(ExecError::UnknownTable(t.clone()));
            }
        }
        let pred = query.predicate_or_true();
        // Partition conjuncts into equi-join conditions and filters.
        let mut join_conds: Vec<(String, String, String, String)> = Vec::new(); // (t1, c1, t2, c2)
        let mut filters: Vec<Pred> = Vec::new();
        for conj in pred.conjuncts() {
            if let Pred::Cmp {
                op: sia_expr::CmpOp::Eq,
                lhs: sia_expr::Expr::Column(a),
                rhs: sia_expr::Expr::Column(b),
            } = conj
            {
                let (oa, ob) = (
                    self.owner_of(&query.tables, a),
                    self.owner_of(&query.tables, b),
                );
                if let (Some(ta), Some(tb)) = (oa, ob) {
                    if ta != tb {
                        join_conds.push((ta, a.clone(), tb, b.clone()));
                        continue;
                    }
                }
            }
            filters.push(conj.clone());
        }
        // Left-deep join tree in FROM order; tables without a usable join
        // condition would need a cross join, which this engine does not
        // support (the paper's workload never needs one).
        let mut plan = Plan::scan(query.tables[0].clone());
        let mut joined: Vec<String> = vec![query.tables[0].clone()];
        let mut remaining: Vec<String> = query.tables[1..].to_vec();
        let mut conds = join_conds;
        while !remaining.is_empty() {
            // Find a join condition connecting a joined table to a new one.
            let pos = conds.iter().position(|(ta, _, tb, _)| {
                (joined.contains(ta) && remaining.contains(tb))
                    || (joined.contains(tb) && remaining.contains(ta))
            });
            let Some(pos) = pos else {
                return Err(ExecError::UnknownColumn(format!(
                    "no equi-join condition connects table(s) {remaining:?}"
                )));
            };
            let (ta, ca, tb, cb) = conds.remove(pos);
            let (new_table, left_key, right_key) = if joined.contains(&ta) {
                (tb.clone(), ca, cb)
            } else {
                (ta.clone(), cb, ca)
            };
            plan = plan.hash_join(Plan::scan(new_table.clone()), left_key, right_key);
            remaining.retain(|t| *t != new_table);
            joined.push(new_table);
        }
        // Any leftover join conditions act as plain filters.
        for (_, ca, _, cb) in conds {
            filters.push(sia_expr::Expr::Column(ca).eq_(sia_expr::Expr::Column(cb)));
        }
        plan = plan.filter(Pred::and_all(filters));
        if let SelectList::Columns(cols) = &query.select {
            plan = plan.project(cols.clone());
        }
        Ok(plan)
    }

    /// Plan, optimize, and execute a query. The move-around pass (if
    /// enabled in `config`) runs before the local rewrite rules, which
    /// then merge and route whatever it attached.
    pub fn run(&self, query: &Query, config: OptimizerConfig) -> Result<QueryResult, ExecError> {
        let plan = self.plan(query)?;
        let (plan, moved) = move_around(plan, &|t| self.schema_of(t), config.move_around);
        let plan = optimize(plan, &|t| self.columns_of(t), config);
        let (table, elapsed, stats) = execute(&plan, self)?;
        Ok(QueryResult {
            table,
            elapsed,
            stats,
            plan,
            moved,
        })
    }

    /// Parse and run a SQL string with the default optimizer.
    pub fn run_sql(&self, sql: &str) -> Result<QueryResult, String> {
        let query = sia_sql::parse_query(sql).map_err(|e| e.to_string())?;
        self.run(&query, OptimizerConfig::default())
            .map_err(|e| e.to_string())
    }

    /// Measured selectivity of a predicate against one table.
    pub fn selectivity(&self, table: &str, pred: &Pred) -> Result<f64, ExecError> {
        let t = self
            .table(table)
            .ok_or_else(|| ExecError::UnknownTable(table.to_string()))?;
        let compiled = crate::compile::compile_pred(pred, &t.schema)?;
        Ok(compiled.selectivity(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;
    use sia_expr::{ColumnDef, DataType, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(
            "orders",
            Table::new(
                Schema::new(vec![
                    ColumnDef::new("o_orderkey", DataType::Integer),
                    ColumnDef::new("o_orderdate", DataType::Date),
                ]),
                vec![
                    Column::int(vec![1, 2, 3, 4]),
                    Column::int(vec![-10, 5, -3, 20]),
                ],
            ),
        );
        db.insert(
            "lineitem",
            Table::new(
                Schema::new(vec![
                    ColumnDef::new("l_orderkey", DataType::Integer),
                    ColumnDef::new("l_shipdate", DataType::Date),
                ]),
                vec![
                    Column::int(vec![1, 1, 2, 3, 5]),
                    Column::int(vec![0, 7, 9, 2, 100]),
                ],
            ),
        );
        db
    }

    #[test]
    fn end_to_end_join_query() {
        let db = db();
        let r = db
            .run_sql(
                "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey \
                 AND o_orderdate < 0",
            )
            .unwrap();
        // orders with date < 0: keys 1, 3 → lineitem rows with keys 1,1,3.
        assert_eq!(r.table.num_rows(), 3);
        // Pushdown put the orders filter below the join.
        assert_eq!(r.plan.filters_below_joins(), 1);
    }

    #[test]
    fn plan_rejects_cartesian() {
        let db = db();
        let q =
            sia_sql::parse_query("SELECT * FROM lineitem, orders WHERE o_orderdate < 0").unwrap();
        assert!(db.plan(&q).is_err());
    }

    #[test]
    fn projection_in_query() {
        let db = db();
        let r = db
            .run_sql("SELECT l_shipdate FROM lineitem WHERE l_shipdate > 5")
            .unwrap();
        assert_eq!(r.table.schema.len(), 1);
        assert_eq!(r.table.num_rows(), 3);
        assert_eq!(r.table.value(0, "l_shipdate"), Value::Int(7));
    }

    #[test]
    fn pushdown_preserves_semantics() {
        let db = db();
        let sql = "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey \
                   AND l_shipdate - o_orderdate < 8 AND l_shipdate < 10";
        let q = sia_sql::parse_query(sql).unwrap();
        let with = db.run(&q, OptimizerConfig::default()).unwrap();
        let without = db
            .run(
                &q,
                OptimizerConfig {
                    pushdown: false,
                    ..OptimizerConfig::default()
                },
            )
            .unwrap();
        assert_eq!(with.table.num_rows(), without.table.num_rows());
        assert!(with.plan.filters_below_joins() > 0);
        assert_eq!(without.plan.filters_below_joins(), 0);
        // Pushdown shrinks the join input.
        assert!(with.stats.join_input_rows < without.stats.join_input_rows);
    }

    #[test]
    fn selectivity_measurement() {
        let db = db();
        let p = sia_sql::parse_predicate("l_shipdate < 8").unwrap();
        assert_eq!(db.selectivity("lineitem", &p).unwrap(), 0.6);
    }

    #[test]
    fn unknown_table_error() {
        let db = db();
        assert!(db.run_sql("SELECT * FROM nope").is_err());
    }
}
