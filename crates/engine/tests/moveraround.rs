//! Plan-equivalence suite for the move-around pass: the same query on
//! seeded `sia-gen` data must return identical result sets with the pass
//! off, static, and static+synthesis — while strictly increasing the
//! number of filters sitting below joins on the snippet-1 chain plan.

use sia_engine::{Database, MoveAround, OptimizerConfig, QueryResult, Table};
use sia_expr::Value;

/// A database with the full sia-gen registry loaded at small row counts
/// (keys are drawn from narrow ranges so joins actually match).
fn gen_db(rows: usize, seed: u64) -> Database {
    let mut db = Database::new();
    for spec in sia_gen::tables() {
        let data = spec.sample(rows, seed ^ u64::from(spec.name.len() as u32));
        db.insert(spec.name, Table::from_rows(spec.schema(), &data));
    }
    db
}

fn config(mode: MoveAround) -> OptimizerConfig {
    OptimizerConfig {
        move_around: mode,
        ..OptimizerConfig::default()
    }
}

/// Sorted row-major rendering of a result, for order-insensitive
/// comparison (`Value` is not `Ord`; Display is exact for ints and
/// dates, and doubles come out of identical arithmetic on both sides).
fn sorted_rows(r: &QueryResult) -> Vec<String> {
    let names: Vec<String> = r
        .table
        .schema
        .columns()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    let mut rows: Vec<String> = (0..r.table.num_rows())
        .map(|i| {
            names
                .iter()
                .map(|n| match r.table.value(i, n) {
                    Value::Null => "NULL".to_string(),
                    v => format!("{v:?}"),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

fn assert_equivalent(db: &Database, sql: &str) {
    let q = sia_sql::parse_query(sql).expect("parse");
    let off = db.run(&q, config(MoveAround::Off)).expect("off");
    let st = db.run(&q, config(MoveAround::Static)).expect("static");
    let syn = db.run(&q, config(MoveAround::Synthesis)).expect("synth");
    assert_eq!(
        sorted_rows(&off),
        sorted_rows(&st),
        "static changed results for {sql}\noff plan:\n{}\nstatic plan:\n{}",
        off.plan,
        st.plan
    );
    assert_eq!(
        sorted_rows(&off),
        sorted_rows(&syn),
        "synthesis changed results for {sql}\noff plan:\n{}\nsynth plan:\n{}",
        off.plan,
        syn.plan
    );
}

#[test]
fn chain_join_results_identical_across_modes() {
    // Narrow keys (nation/region) so a three-table chain has matches.
    let db = gen_db(256, 11);
    assert_equivalent(
        &db,
        "SELECT * FROM customer, nation, region \
         WHERE c_nationkey = n_nationkey AND n_regionkey = r_regionkey \
         AND r_regionkey <= 2",
    );
}

#[test]
fn star_join_results_identical_across_modes() {
    let db = gen_db(256, 23);
    assert_equivalent(
        &db,
        "SELECT * FROM nation, customer, supplier \
         WHERE n_nationkey = c_nationkey AND n_nationkey = s_nationkey \
         AND n_nationkey < 12",
    );
}

#[test]
fn self_join_results_identical_across_modes() {
    // The SQL layer has no aliases: register the same sampled data under
    // a second name with renamed columns to express a self-join.
    let mut db = Database::new();
    let spec = sia_gen::table("nation").expect("nation spec");
    let data = spec.sample(128, 5);
    db.insert("nation", Table::from_rows(spec.schema(), &data));
    let mirrored = sia_expr::Schema::new(
        spec.schema()
            .columns()
            .iter()
            .map(|c| sia_expr::ColumnDef::new(format!("m_{}", &c.name[2..]), c.ty))
            .collect(),
    );
    db.insert("mirror", Table::from_rows(mirrored, &data));
    assert_equivalent(
        &db,
        "SELECT * FROM nation, mirror \
         WHERE n_regionkey = m_regionkey AND n_nationkey > 17",
    );
}

#[test]
fn chain_pushes_more_filters_than_local_rules() {
    // The snippet-1 shape: a deep chain with one selective filter at the
    // top. Local rules can only route the filter to its own table; the
    // move-around pass derives a bound for every chained key.
    let db = gen_db(200, 3);
    let sql = "SELECT * FROM customer, nation, region \
               WHERE c_nationkey = n_nationkey AND n_regionkey = r_regionkey \
               AND r_regionkey >= 3";
    let q = sia_sql::parse_query(sql).expect("parse");
    let off = db.run(&q, config(MoveAround::Off)).expect("off");
    let st = db.run(&q, config(MoveAround::Static)).expect("static");
    assert!(
        st.plan.filters_below_joins() > off.plan.filters_below_joins(),
        "expected strictly more pushed filters\noff:\n{}\nstatic:\n{}",
        off.plan,
        st.plan
    );
    // The derived bounds shrink what flows into the joins.
    assert!(
        st.stats.join_input_rows < off.stats.join_input_rows,
        "derived predicates saved no join input rows ({} vs {})",
        st.stats.join_input_rows,
        off.stats.join_input_rows
    );
    // And the report says so.
    assert!(!st.moved.derived.is_empty());
    assert!(st.moved.scans_pushed() >= 1);
}

#[test]
fn equality_classes_propagate_point_constraints() {
    // A point constraint on one side of an equality class reaches the
    // other side: n_regionkey = r_regionkey ∧ r_regionkey = 4 derives
    // n_regionkey = 4 at the nation scan.
    let db = gen_db(200, 29);
    let sql = "SELECT * FROM nation, region \
               WHERE n_regionkey = r_regionkey AND r_regionkey = 4";
    let q = sia_sql::parse_query(sql).expect("parse");
    let st = db.run(&q, config(MoveAround::Static)).expect("static");
    assert!(
        st.moved
            .derived
            .iter()
            .any(|(t, p)| t == "nation" && p.columns() == vec!["n_regionkey".to_string()]),
        "no constant propagated to nation: {}",
        st.moved
    );
    assert_equivalent(&db, sql);
}
