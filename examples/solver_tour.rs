//! A tour of the from-scratch SMT solver that powers Sia: satisfiability,
//! models, integer reasoning, and Cooper quantifier elimination.
//!
//! ```sh
//! cargo run --example solver_tour
//! ```

use sia::num::BigRat;
use sia::smt::{eliminate_exists, Formula, LinTerm, QeConfig, SmtResult, Solver, Sort};

fn main() {
    let mut solver = Solver::new();
    let x = solver.declare("x", Sort::Int);
    let y = solver.declare("y", Sort::Int);

    let tx = LinTerm::var(x);
    let ty = LinTerm::var(y);
    let c = |v: i64| LinTerm::constant(BigRat::from(v));

    // 1. Satisfiability with models: x + y = 10 ∧ x - y = 4.
    let f = Formula::eq0(tx.add(&ty).sub(&c(10))).and(Formula::eq0(tx.sub(&ty).sub(&c(4))));
    match solver.check(&f) {
        SmtResult::Sat(m) => {
            println!(
                "x + y = 10 ∧ x - y = 4  ⇒  x = {}, y = {}",
                m.int(x),
                m.int(y)
            );
        }
        other => println!("unexpected: {other:?}"),
    }

    // 2. Integer reasoning: 0 < x < 1 has no integer solution.
    let gap = Formula::lt0(c(0).sub(&tx)).and(Formula::lt0(tx.sub(&c(1))));
    println!("0 < x < 1 over ℤ: {:?}", verdict(solver.check(&gap)));

    // 3. Divisibility: x ≡ 0 (mod 7) with 13 ≤ x ≤ 15 forces x = 14.
    let div = Formula::divides(7i64.into(), tx.clone())
        .and(Formula::le0(c(13).sub(&tx)))
        .and(Formula::le0(tx.sub(&c(15))));
    if let SmtResult::Sat(m) = solver.check(&div) {
        println!("7 | x ∧ 13 ≤ x ≤ 15  ⇒  x = {}", m.int(x));
    }

    // 4. Quantifier elimination (the engine behind Sia's FALSE samples):
    //    ∃x. 2x = y  ⇔  2 | y.
    let even = Formula::eq0(tx.scale(&BigRat::from(2)).sub(&ty));
    let qe = eliminate_exists(&even, &[x], &QeConfig::default()).expect("within budget");
    println!("∃x. 2x = y  ⇒  {qe}");

    // 5. The motivating example's projection: eliminating o_orderdate from
    //    the §3.2 predicate leaves the region a1-a2 ≤ 28 ∧ a2 ≤ 18.
    let a1 = solver.declare("a1", Sort::Int);
    let a2 = solver.declare("a2", Sort::Int);
    let b1 = solver.declare("b1", Sort::Int);
    let (t1, t2, tb) = (LinTerm::var(a1), LinTerm::var(a2), LinTerm::var(b1));
    let p = Formula::lt0(t2.sub(&tb).sub(&c(20)))
        .and(Formula::lt0(t1.sub(&t2).sub(&t2.sub(&tb)).sub(&c(10))))
        .and(Formula::lt0(tb.clone()));
    let projected = eliminate_exists(&p, &[b1], &QeConfig::default()).expect("within budget");
    // Spot-check two points against the known region.
    for (a1v, a2v, expect) in [(0i64, 0i64, true), (50, 0, false)] {
        let g = projected.subst(a1, &c(a1v)).subst(a2, &c(a2v));
        let truth = matches!(g, Formula::True)
            || (!matches!(g, Formula::False) && g.eval(&|_| BigRat::zero(), &|_| false));
        println!("∃b1.p at (a1={a1v}, a2={a2v}): {truth} (expected {expect})");
        assert_eq!(truth, expect);
    }
    println!(
        "\nsolver stats: {} checks, {} lazy rounds, {} theory lemmas, {} B&B nodes",
        solver.stats.checks, solver.stats.rounds, solver.stats.theory_lemmas, solver.stats.bb_nodes
    );
}

fn verdict(r: SmtResult) -> &'static str {
    match r {
        SmtResult::Sat(_) => "sat",
        SmtResult::Unsat => "unsat",
        SmtResult::Unknown => "unknown",
    }
}
