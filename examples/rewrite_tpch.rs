//! End-to-end query rewriting: take the paper's Q1 (§2), synthesize a
//! lineitem-only predicate, and execute both versions on generated
//! TPC-H-style data to see the push-down speed-up.
//!
//! ```sh
//! cargo run --release --example rewrite_tpch
//! ```

use sia::core::{rewrite_query, Synthesizer};
use sia::engine::OptimizerConfig;
use sia::expr::Catalog;
use sia::sql::parse_query;
use sia::tpch::{generate, lineitem_schema, orders_schema, TpchConfig};

fn main() {
    let q1 = parse_query(
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey \
         AND l_shipdate - o_orderdate < 20 \
         AND o_orderdate < DATE '1993-06-01' \
         AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10",
    )
    .expect("Q1 parses");
    println!("Q1: {q1}\n");

    let mut catalog = Catalog::new();
    catalog.add_table("orders", orders_schema());
    catalog.add_table("lineitem", lineitem_schema());

    let mut synthesizer = Synthesizer::default();
    let outcome =
        rewrite_query(&mut synthesizer, &q1, &catalog, "lineitem").expect("rewrite succeeds");
    let rewritten = outcome.rewritten.expect("Q1 admits a lineitem predicate");
    println!("synthesized predicate: {}", outcome.synthesized.unwrap());
    println!("rewritten query: {rewritten}\n");

    let db = generate(&TpchConfig {
        scale_factor: 0.05,
        ..TpchConfig::default()
    });
    let cfg = OptimizerConfig::default();
    let original = db.run(&q1, cfg).expect("Q1 runs");
    let faster = db.run(&rewritten, cfg).expect("rewritten runs");
    assert_eq!(
        original.table.num_rows(),
        faster.table.num_rows(),
        "semantic equivalence"
    );
    println!("original plan:\n{}", original.plan);
    println!("rewritten plan:\n{}", faster.plan);
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    println!(
        "original: {:.1} ms ({} rows into the join)",
        ms(original.elapsed),
        original.stats.join_input_rows
    );
    println!(
        "rewritten: {:.1} ms ({} rows into the join) — {:.2}x",
        ms(faster.elapsed),
        faster.stats.join_input_rows,
        ms(original.elapsed) / ms(faster.elapsed)
    );
}
