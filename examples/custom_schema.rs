//! Sia on a custom (non-TPC-H) schema, compared against the syntax-driven
//! transitive-closure baseline.
//!
//! A telemetry pipeline joins `readings` (sensor samples) with `windows`
//! (processing windows). The analyst's predicate mixes columns of both
//! tables with arithmetic the transitive-closure rule cannot see through.
//!
//! ```sh
//! cargo run --example custom_schema
//! ```

use sia::core::baselines::transitive_closure;
use sia::core::{SiaConfig, Synthesizer};
use sia::sql::parse_predicate;

fn main() {
    // readings(r_ts, r_latency), windows(w_start, w_len):
    //  - the reading falls in the window,
    //  - windows are at most 60 ticks long and start after tick 0,
    //  - end-to-end latency budget relates both tables arithmetically.
    let p = parse_predicate(
        "r_ts >= w_start AND r_ts < w_start + w_len \
         AND w_len <= 60 AND w_start >= 0 \
         AND r_latency + r_ts < w_start + w_len + 15",
    )
    .expect("predicate parses");
    println!("predicate: {p}\n");

    let targets = ["r_ts".to_string(), "r_latency".to_string()];

    // Baseline: syntax-driven transitive closure.
    match transitive_closure(&p, &targets) {
        Some(tc) => println!("transitive closure derives: {tc}"),
        None => println!("transitive closure derives: nothing"),
    }

    // Sia.
    let mut synthesizer = Synthesizer::new(SiaConfig::default());
    for cols in [
        vec!["r_ts".to_string()],
        vec!["r_latency".to_string()],
        targets.to_vec(),
    ] {
        let r = synthesizer.synthesize(&p, &cols).expect("synthesis runs");
        println!(
            "Sia over {cols:?}: {} (optimal: {}, {} iterations)",
            r.predicate
                .as_ref()
                .map(|q| q.to_string())
                .unwrap_or_else(|| "TRUE (nothing useful)".to_string()),
            r.optimal,
            r.stats.iterations,
        );
    }
    println!("\nA reduced predicate over readings-only columns lets the");
    println!("optimizer filter `readings` before the join with `windows`.");
}
