//! Quickstart: synthesize a valid, optimal predicate for the paper's
//! running example (§3.2).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sia::core::{SiaConfig, Synthesizer};
use sia::sql::parse_predicate;

fn main() {
    // The §3.2 predicate with dates already lowered to integer day
    // offsets: a1 = l_commitdate, a2 = l_shipdate, b1 = o_orderdate.
    let p = parse_predicate("a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0")
        .expect("predicate parses");
    println!("original predicate p: {p}");
    println!("target columns:       a1, a2\n");

    let mut synthesizer = Synthesizer::new(SiaConfig::default());
    let result = synthesizer
        .synthesize(&p, &["a1".to_string(), "a2".to_string()])
        .expect("synthesis runs");

    match &result.predicate {
        Some(p1) => {
            println!("synthesized p1: {p1}");
            println!("certified optimal: {}", result.optimal);
        }
        None => println!("only the trivial predicate TRUE is valid here"),
    }
    println!(
        "\nloop statistics: {} iterations, {} TRUE / {} FALSE samples",
        result.stats.iterations, result.stats.true_samples, result.stats.false_samples
    );
    println!(
        "time: generation {:.1} ms, learning {:.1} ms, validation {:.1} ms",
        result.stats.generation_time.as_secs_f64() * 1e3,
        result.stats.learning_time.as_secs_f64() * 1e3,
        result.stats.validation_time.as_secs_f64() * 1e3,
    );
    println!("\n(The exact satisfiable region is a1 - a2 <= 28 AND a2 <= 18;");
    println!(" any valid p1 must contain it, and the optimal p1 equals it.)");
}
